package opt

import (
	"math/bits"
	"sort"

	"customfit/internal/ir"
)

// Clean runs the per-block cleanup pipeline over every block of f:
// regional renaming to single-assignment form, copy propagation,
// constant folding, algebraic simplification, multiply strength
// reduction, value-numbering CSE (including load CSE across non-aliased
// stores), addressing-offset folding, and dead-code elimination.
//
// After Clean, each block defines only fresh temporaries, with "home"
// registers (live across blocks) written exactly once by a final move
// group just before the terminator. Clean is idempotent and is re-run
// after every structural pass.
func Clean(f *ir.Func) {
	lv := ComputeLiveness(f)
	for _, b := range f.Blocks {
		cleanBlock(f, b, lv)
	}
}

// vnKey identifies a computed value for CSE. Operands are flattened
// into (kind, value) pairs; loads additionally carry their memory
// reference, offset and the store epoch they observed.
type vnKey struct {
	op         ir.Op
	n          int
	k0, k1, k2 ir.OperandKind
	v0, v1, v2 int32
	mem        *ir.MemRef
	epoch      int
	off        int32
	elem       ir.ElemType
}

func operandVal(o ir.Operand) int32 {
	if o.IsImm() {
		return o.Imm
	}
	return int32(o.Reg)
}

func makeKey(op ir.Op, args []ir.Operand) vnKey {
	k := vnKey{op: op, n: len(args)}
	if op.IsCommutative() && len(args) == 2 {
		a, b := args[0], args[1]
		if a.Kind > b.Kind || (a.Kind == b.Kind && operandVal(a) > operandVal(b)) {
			args = []ir.Operand{b, a}
		}
	}
	if len(args) > 0 {
		k.k0, k.v0 = args[0].Kind, operandVal(args[0])
	}
	if len(args) > 1 {
		k.k1, k.v1 = args[1].Kind, operandVal(args[1])
	}
	if len(args) > 2 {
		k.k2, k.v2 = args[2].Kind, operandVal(args[2])
	}
	return k
}

// affineForm expresses a register's value as scale*base + off (exact
// two's-complement arithmetic), the canonical shape of unrolled address
// computations like (i+k)*3+c.
type affineForm struct {
	base       ir.Reg // live-in register the value is linear in
	scale, off int32
}

type blockCleaner struct {
	f       *ir.Func
	bind    map[ir.Reg]ir.Operand // original reg -> current value
	defined []ir.Reg              // original dest regs in definition order
	wasDef  map[ir.Reg]bool
	cse     map[vnKey]ir.Operand
	epoch   map[*ir.MemRef]int
	defOf   map[ir.Reg]*ir.Instr // fresh temp -> defining emitted instr
	out     []*ir.Instr

	// affine tracks linear forms of emitted temps; canonAddr maps
	// (base, scale) to the first register computing that linear form,
	// so every address with the same slope shares one base register and
	// differs only in the constant offset. This is what lets the memory
	// disambiguator prove unrolled copies' accesses disjoint.
	affine    map[ir.Reg]affineForm
	canonAddr map[affineKey]canonEntry
}

type affineKey struct {
	base  ir.Reg
	scale int32
}

type canonEntry struct {
	reg ir.Reg
	off int32
}

func cleanBlock(f *ir.Func, b *ir.Block, lv *Liveness) {
	term := b.Terminator()
	if term == nil {
		return // malformed; let Verify report it
	}
	c := &blockCleaner{
		f:         f,
		bind:      map[ir.Reg]ir.Operand{},
		wasDef:    map[ir.Reg]bool{},
		cse:       map[vnKey]ir.Operand{},
		epoch:     map[*ir.MemRef]int{},
		defOf:     map[ir.Reg]*ir.Instr{},
		affine:    map[ir.Reg]affineForm{},
		canonAddr: map[affineKey]canonEntry{},
	}
	for _, in := range b.Body() {
		c.process(in)
	}

	// Final move group: restore home registers that are live out.
	var homes []ir.Reg
	inSet := map[ir.Reg]bool{}
	for _, r := range c.defined {
		if lv.LiveOut(b, r) && !inSet[r] {
			homes = append(homes, r)
			inSet[r] = true
		}
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i] < homes[j] })
	// The final moves are a parallel assignment: if one home's value is
	// another home register's live-in value, copy it to a temp first.
	tempOf := map[ir.Reg]ir.Reg{}
	var pre, movs []*ir.Instr
	for _, r := range homes {
		v := c.bind[r]
		if v.IsReg() && inSet[v.Reg] && v.Reg != r {
			t, ok := tempOf[v.Reg]
			if !ok {
				t = f.NewReg()
				tempOf[v.Reg] = t
				pre = append(pre, ir.NewInstr(ir.OpMov, t, ir.R(v.Reg)))
			}
			v = ir.R(t)
		}
		if v.IsReg() && v.Reg == r {
			continue // mov r, r
		}
		movs = append(movs, ir.NewInstr(ir.OpMov, r, v))
	}

	// Rewrite the terminator's uses.
	for i, a := range term.Args {
		term.Args[i] = c.subst(a)
	}

	// DCE over the body: keep stores; keep defs transitively needed by
	// the final moves, the pre-copies, and the terminator.
	needed := newRegset(f.NumRegs())
	markUses := func(ins []*ir.Instr) {
		for _, in := range ins {
			for _, a := range in.Args {
				if a.IsReg() {
					needed.set(a.Reg)
				}
			}
		}
	}
	markUses(pre)
	markUses(movs)
	markUses([]*ir.Instr{term})
	kept := make([]*ir.Instr, 0, len(c.out))
	for i := len(c.out) - 1; i >= 0; i-- {
		in := c.out[i]
		if in.Op.HasDest() && !needed.get(in.Dest) {
			continue // dead pure op or load
		}
		for _, a := range in.Args {
			if a.IsReg() {
				needed.set(a.Reg)
			}
		}
		kept = append(kept, in)
	}
	// Reverse kept.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}

	instrs := kept
	instrs = append(instrs, pre...)
	instrs = append(instrs, movs...)
	instrs = append(instrs, term)
	b.Instrs = instrs
}

func (c *blockCleaner) subst(a ir.Operand) ir.Operand {
	if a.IsReg() {
		if v, ok := c.bind[a.Reg]; ok {
			return v
		}
	}
	return a
}

func (c *blockCleaner) process(in *ir.Instr) {
	switch {
	case in.Op == ir.OpNop:
		return
	case in.Op == ir.OpMov:
		c.define(in.Dest, c.subst(in.Args[0]))
	case in.Op == ir.OpLoad:
		idx := c.subst(in.Args[0])
		off := in.Off
		idx, off = c.foldAddress(idx, off)
		key := vnKey{op: ir.OpLoad, n: 1, k0: idx.Kind, v0: operandVal(idx),
			mem: in.Mem, epoch: c.epoch[in.Mem], off: off, elem: in.Elem}
		if v, ok := c.cse[key]; ok {
			c.define(in.Dest, v)
			return
		}
		d := c.f.NewReg()
		ni := &ir.Instr{Op: ir.OpLoad, Dest: d, Args: []ir.Operand{idx}, Mem: in.Mem, Off: off, Elem: in.Elem}
		c.out = append(c.out, ni)
		c.defOf[d] = ni
		c.cse[key] = ir.R(d)
		c.define(in.Dest, ir.R(d))
	case in.Op == ir.OpStore:
		idx := c.subst(in.Args[0])
		val := c.subst(in.Args[1])
		off := in.Off
		idx, off = c.foldAddress(idx, off)
		c.out = append(c.out, &ir.Instr{Op: ir.OpStore, Dest: ir.NoReg,
			Args: []ir.Operand{idx, val}, Mem: in.Mem, Off: off, Elem: in.Elem})
		c.epoch[in.Mem]++
	case in.Op == ir.OpFused:
		// Custom fused op: substitute the inputs and re-emit opaquely.
		// No folding (Op.Eval does not know the spec) and no vnKey CSE
		// (the three-operand key cannot carry a variable-arity spec);
		// the op rewriter runs after Clean anyway, so nothing is lost.
		args := make([]ir.Operand, len(in.Args))
		for i, a := range in.Args {
			args[i] = c.subst(a)
		}
		d := c.f.NewReg()
		ni := &ir.Instr{Op: ir.OpFused, Dest: d, Args: args, Fused: in.Fused}
		c.out = append(c.out, ni)
		c.defOf[d] = ni
		c.define(in.Dest, ir.R(d))
	default: // pure ALU op
		args := make([]ir.Operand, len(in.Args))
		for i, a := range in.Args {
			args[i] = c.subst(a)
		}
		c.define(in.Dest, c.emitPure(in.Op, args))
	}
}

// define records that original register r now holds value v.
func (c *blockCleaner) define(r ir.Reg, v ir.Operand) {
	if !c.wasDef[r] {
		c.wasDef[r] = true
		c.defined = append(c.defined, r)
	}
	c.bind[r] = v
}

// emitPure folds, simplifies, strength-reduces and CSEs a pure
// operation, emitting at most a couple of instructions and returning
// the value operand.
func (c *blockCleaner) emitPure(op ir.Op, args []ir.Operand) ir.Operand {
	// Full constant folding.
	allImm := true
	for _, a := range args {
		if !a.IsImm() {
			allImm = false
			break
		}
	}
	if allImm {
		vals := make([]int32, len(args))
		for i, a := range args {
			vals[i] = a.Imm
		}
		return ir.Imm(op.Eval(vals...))
	}
	// Canonicalize: immediate on the right for commutative ops; a-imm
	// becomes a+(-imm) so addressing folds see a single shape.
	if op.IsCommutative() && len(args) == 2 && args[0].IsImm() {
		args[0], args[1] = args[1], args[0]
	}
	if op == ir.OpSub && args[1].IsImm() && args[1].Imm != -2147483648 {
		op = ir.OpAdd
		args = []ir.Operand{args[0], ir.Imm(-args[1].Imm)}
	}
	if v, ok := simplify(op, args); ok {
		return v
	}
	// Multiply strength reduction: x*C in <= 2 cheap ops.
	if op == ir.OpMul && args[1].IsImm() {
		if v, ok := c.mulByConst(args[0], args[1].Imm); ok {
			return v
		}
	}
	key := makeKey(op, args)
	if v, ok := c.cse[key]; ok {
		if v.IsReg() {
			c.recordAffine(v.Reg, op, args)
		}
		return v
	}
	d := c.f.NewReg()
	ni := ir.NewInstr(op, d, args...)
	c.out = append(c.out, ni)
	c.defOf[d] = ni
	c.cse[key] = ir.R(d)
	c.recordAffine(d, op, args)
	return ir.R(d)
}

// affineOf returns the linear form of an operand, if known: immediates
// are pure offsets; live-in registers are themselves; emitted temps use
// the recorded form.
func (c *blockCleaner) affineOf(o ir.Operand) (affineForm, bool) {
	if o.IsImm() {
		return affineForm{base: ir.NoReg, scale: 0, off: o.Imm}, true
	}
	if af, ok := c.affine[o.Reg]; ok {
		return af, true
	}
	if _, fresh := c.defOf[o.Reg]; fresh {
		// An emitted temp with no recorded linear form (a load result,
		// a compare, ...) is opaque.
		return affineForm{}, false
	}
	// Any other register is an original (live-in-valued) register:
	// after regional renaming, substituted uses of original registers
	// always read the block's entry value, so it is a stable base.
	return affineForm{base: o.Reg, scale: 1, off: 0}, true
}

// recordAffine derives the linear form of d = op(args) when possible.
func (c *blockCleaner) recordAffine(d ir.Reg, op ir.Op, args []ir.Operand) {
	if _, done := c.affine[d]; done {
		return
	}
	combine := func(x, y affineForm, sub bool) (affineForm, bool) {
		if sub {
			y.scale, y.off = -y.scale, -y.off
		}
		switch {
		case x.base == ir.NoReg:
			y.off += x.off
			return y, true
		case y.base == ir.NoReg:
			x.off += y.off
			return x, true
		case x.base == y.base:
			return affineForm{base: x.base, scale: x.scale + y.scale, off: x.off + y.off}, true
		}
		return affineForm{}, false
	}
	var out affineForm
	ok := false
	switch op {
	case ir.OpAdd, ir.OpSub:
		x, ok1 := c.affineOf(args[0])
		y, ok2 := c.affineOf(args[1])
		if ok1 && ok2 {
			out, ok = combine(x, y, op == ir.OpSub)
		}
	case ir.OpShl:
		if args[1].IsImm() {
			if x, ok1 := c.affineOf(args[0]); ok1 {
				sh := uint32(args[1].Imm) & 31
				out = affineForm{base: x.base, scale: x.scale << sh, off: x.off << sh}
				ok = true
			}
		}
	case ir.OpMul:
		if args[1].IsImm() {
			if x, ok1 := c.affineOf(args[0]); ok1 {
				out = affineForm{base: x.base, scale: x.scale * args[1].Imm, off: x.off * args[1].Imm}
				ok = true
			}
		}
	case ir.OpMov:
		if x, ok1 := c.affineOf(args[0]); ok1 {
			out, ok = x, true
		}
	}
	if ok && out.base != ir.NoReg {
		c.affine[d] = out
	}
}

// simplify applies algebraic identities. args are already substituted
// and canonicalized.
func simplify(op ir.Op, args []ir.Operand) (ir.Operand, bool) {
	imm1 := func() (int32, bool) {
		if len(args) == 2 && args[1].IsImm() {
			return args[1].Imm, true
		}
		return 0, false
	}
	sameRegs := len(args) == 2 && args[0].IsReg() && args[1].IsReg() && args[0].Reg == args[1].Reg
	switch op {
	case ir.OpAdd:
		if v, ok := imm1(); ok && v == 0 {
			return args[0], true
		}
	case ir.OpSub:
		if sameRegs {
			return ir.Imm(0), true
		}
	case ir.OpMul:
		if v, ok := imm1(); ok {
			switch v {
			case 0:
				return ir.Imm(0), true
			case 1:
				return args[0], true
			}
		}
	case ir.OpShl, ir.OpShrA, ir.OpShrU:
		if v, ok := imm1(); ok && v&31 == 0 {
			return args[0], true
		}
		if args[0].IsImm() && args[0].Imm == 0 {
			return ir.Imm(0), true
		}
	case ir.OpAnd:
		if sameRegs {
			return args[0], true
		}
		if v, ok := imm1(); ok {
			if v == 0 {
				return ir.Imm(0), true
			}
			if v == -1 {
				return args[0], true
			}
		}
	case ir.OpOr:
		if sameRegs {
			return args[0], true
		}
		if v, ok := imm1(); ok {
			if v == 0 {
				return args[0], true
			}
			if v == -1 {
				return ir.Imm(-1), true
			}
		}
	case ir.OpXor:
		if sameRegs {
			return ir.Imm(0), true
		}
		if v, ok := imm1(); ok && v == 0 {
			return args[0], true
		}
	case ir.OpCmpEQ, ir.OpCmpLE, ir.OpCmpGE:
		if sameRegs {
			return ir.Imm(1), true
		}
	case ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpGT:
		if sameRegs {
			return ir.Imm(0), true
		}
	case ir.OpSelect:
		if args[0].IsImm() {
			if args[0].Imm != 0 {
				return args[1], true
			}
			return args[2], true
		}
		if len(args) == 3 && args[1] == args[2] {
			return args[1], true
		}
	}
	return ir.Operand{}, false
}

// mulByConst rewrites x*C as shifts and adds when it fits in at most
// two single-cycle operations — the fixed policy a production VLIW
// compiler would apply regardless of how many multipliers the target
// has.
func (c *blockCleaner) mulByConst(x ir.Operand, v int32) (ir.Operand, bool) {
	switch v {
	case 0:
		return ir.Imm(0), true
	case 1:
		return x, true
	case -1:
		return c.emitPure(ir.OpSub, []ir.Operand{ir.Imm(0), x}), true
	}
	abs := v
	if abs < 0 {
		abs = -abs
		if abs < 0 {
			return ir.Operand{}, false // -2^31
		}
	}
	if abs&(abs-1) == 0 { // power of two
		k := int32(bits.TrailingZeros32(uint32(abs)))
		sh := c.emitPure(ir.OpShl, []ir.Operand{x, ir.Imm(k)})
		if v < 0 {
			return c.emitPure(ir.OpSub, []ir.Operand{ir.Imm(0), sh}), true
		}
		return sh, true
	}
	if v > 0 {
		if p := v - 1; p&(p-1) == 0 { // 2^k + 1
			k := int32(bits.TrailingZeros32(uint32(p)))
			sh := c.emitPure(ir.OpShl, []ir.Operand{x, ir.Imm(k)})
			return c.emitPure(ir.OpAdd, []ir.Operand{sh, x}), true
		}
		if p := v + 1; p&(p-1) == 0 { // 2^k - 1
			k := int32(bits.TrailingZeros32(uint32(p)))
			sh := c.emitPure(ir.OpShl, []ir.Operand{x, ir.Imm(k)})
			return c.emitPure(ir.OpSub, []ir.Operand{sh, x}), true
		}
	}
	return ir.Operand{}, false
}

// foldAddress chases `t = add x, imm` chains feeding an address index,
// folding the constants into the access's element offset (the template
// has base+offset addressing, so these adds are free).
func (c *blockCleaner) foldAddress(idx ir.Operand, off int32) (ir.Operand, int32) {
	for idx.IsReg() {
		def, ok := c.defOf[idx.Reg]
		if !ok || def.Op != ir.OpAdd || !def.Args[1].IsImm() {
			break
		}
		off += def.Args[1].Imm
		idx = def.Args[0]
	}
	if idx.IsImm() { // fully constant address
		return ir.Imm(idx.Imm + off), 0
	}
	// Affine canonicalization: rewrite s*b+o indices onto the first
	// register seen with the same (base, slope), moving the delta into
	// the constant offset. Exact under two's-complement arithmetic.
	if af, ok := c.affineOf(idx); ok && af.base != ir.NoReg {
		key := affineKey{af.base, af.scale}
		if ce, seen := c.canonAddr[key]; seen {
			return ir.R(ce.reg), off + af.off - ce.off
		}
		c.canonAddr[key] = canonEntry{reg: idx.Reg, off: af.off}
	}
	return idx, off
}
