package search

import (
	"math"
	"testing"

	"customfit/internal/machine"
)

// costSpeedupObjective is a synthetic but realistically-shaped
// objective: diminishing returns in ALUs and registers, a cycle-time
// penalty, and a hard cost cap — no compilation needed, so strategy
// behaviour can be tested quickly and deterministically.
func costSpeedupObjective(costCap float64) Objective {
	cost := machine.DefaultCostModel
	cyc := machine.DefaultCycleModel
	return func(a machine.Arch) float64 {
		if cost.Cost(a) > costCap {
			return math.Inf(-1)
		}
		ilp := math.Log2(float64(a.ALUs)+1)*2 + math.Log2(float64(a.Regs))/2 +
			float64(a.L2Ports)*0.7 - float64(a.L2Lat)*0.15 -
			0.4*math.Log2(float64(a.Clusters)+1)
		return ilp / cyc.Derate(a)
	}
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	space := machine.FullSpace()
	obj := costSpeedupObjective(10)
	r := Exhaustive(space, obj)
	if r.Evaluations != len(space) {
		t.Errorf("exhaustive evaluated %d of %d", r.Evaluations, len(space))
	}
	// Verify it really is the max.
	for _, a := range space {
		if obj(a) > r.BestScore {
			t.Fatalf("missed better point %v", a)
		}
	}
}

func TestStrategiesRespectBudgetAndFindGoodPoints(t *testing.T) {
	space := machine.FullSpace()
	obj := costSpeedupObjective(10)
	results := Compare(space, obj, 42)
	if len(results) != 4 {
		t.Fatalf("got %d strategies", len(results))
	}
	for _, r := range results[1:] {
		if r.Evaluations >= results[0].Evaluations {
			t.Errorf("%s used %d evaluations, not fewer than exhaustive %d",
				r.Strategy, r.Evaluations, results[0].Evaluations)
		}
		if r.Optimality < 0.85 {
			t.Errorf("%s reached only %.0f%% of optimum", r.Strategy, 100*r.Optimality)
		}
		if machine.DefaultCostModel.Cost(r.Best) > 10 {
			t.Errorf("%s selected over-budget architecture %v", r.Strategy, r.Best)
		}
	}
}

func TestSearchDeterministicForSeed(t *testing.T) {
	space := machine.FullSpace()
	obj := costSpeedupObjective(15)
	a := HillClimb(space, obj, 3, 7)
	b := HillClimb(space, obj, 3, 7)
	if a.Best != b.Best || a.Evaluations != b.Evaluations {
		t.Error("hill climb not deterministic for fixed seed")
	}
	c := Anneal(space, obj, 100, 7)
	d := Anneal(space, obj, 100, 7)
	if c.Best != d.Best {
		t.Error("annealing not deterministic for fixed seed")
	}
}

func TestNeighborsStayInSpace(t *testing.T) {
	space := machine.FullSpace()
	in := spaceSet(space)
	for _, a := range space[:50] {
		for _, n := range Neighbors(a, in) {
			if !in[n] {
				t.Fatalf("neighbor %v of %v not in space", n, a)
			}
		}
	}
}

func TestSubLatticeDenseAndValid(t *testing.T) {
	sub := SubLattice()
	if len(sub) < 50 {
		t.Fatalf("sub-lattice too small: %d", len(sub))
	}
	in := spaceSet(sub)
	for _, a := range sub {
		if err := a.Validate(); err != nil {
			t.Errorf("invalid point %v: %v", a, err)
		}
	}
	// Most points should have at least two in-lattice neighbors, or the
	// local strategies starve.
	starved := 0
	for _, a := range sub {
		if len(Neighbors(a, in)) < 2 {
			starved++
		}
	}
	if starved > len(sub)/5 {
		t.Errorf("%d of %d points have <2 neighbors", starved, len(sub))
	}
}

func TestCompoundNeighborCrossesRidge(t *testing.T) {
	sub := SubLattice()
	in := spaceSet(sub)
	// From a 4-ALU 2-cluster machine, the compound move must reach the
	// 8-ALU 4-cluster machine directly.
	from := machine.Arch{ALUs: 4, MULs: 1, Regs: 128, L2Ports: 2, L2Lat: 2, Clusters: 2}
	if !in[from] {
		t.Skip("anchor not in lattice")
	}
	want := machine.Arch{ALUs: 8, MULs: 2, Regs: 128, L2Ports: 2, L2Lat: 2, Clusters: 4}
	found := false
	for _, n := range Neighbors(from, in) {
		if n == want {
			found = true
		}
	}
	if !found {
		t.Errorf("compound widen move missing from %v's neighborhood", from)
	}
}
