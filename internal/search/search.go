// Package search implements design-space search strategies over the
// architecture space and measures their effectiveness, answering the
// paper's third question ("How effective are search methods aimed at
// finding the appropriate architecture?"). The paper searched
// exhaustively and conjectured that "any good search technique could
// cut down significantly on processing time without greatly affecting
// the results"; this package quantifies that: each strategy reports how
// many evaluations it spent and how close it came to the exhaustive
// optimum.
package search

import (
	"context"
	"math"
	"math/rand"

	"customfit/internal/machine"
	"customfit/internal/obs"
)

// Objective scores an architecture; higher is better. Strategies
// receive it wrapped in a counting evaluator. A typical objective is a
// benchmark's speedup, or speedup under a cost cap (-Inf when over
// budget).
type Objective func(machine.Arch) float64

// Bound is an admissible upper bound on an Objective: Bound(a) ≥
// Objective(a) for every a, computed much more cheaply (for speedup
// objectives, from sched.LowerBound's no-compile cycle bound). A
// strategy that skips a whose Bound(a) ≤ incumbent cannot change its
// result, because incumbents only advance on strict improvement.
type Bound func(machine.Arch) float64

// Result reports one strategy's outcome.
type Result struct {
	Strategy    string
	Best        machine.Arch
	BestScore   float64
	Evaluations int
	// Pruned counts candidate evaluations skipped because the bound
	// proved they could not beat the incumbent (zero without a Bound).
	Pruned int
	// Optimality is BestScore / exhaustive optimum (filled by Compare).
	Optimality float64
}

// counter wraps an objective with memoized evaluation counting and
// optional bound-guided pruning.
type counter struct {
	obj    Objective
	bound  Bound
	seen   map[machine.Arch]float64
	evals  int
	pruned int
}

func newCounter(obj Objective) *counter {
	return &counter{obj: obj, seen: map[machine.Arch]float64{}}
}

func (c *counter) eval(a machine.Arch) float64 {
	if v, ok := c.seen[a]; ok {
		return v
	}
	c.evals++
	v := c.obj(a)
	c.seen[a] = v
	return v
}

// cutoff reports whether a can be skipped against the incumbent score:
// true when the bound proves obj(a) ≤ incumbent, so evaluating a could
// not improve on it. Already-evaluated points are never "pruned" (the
// memoized value is free).
func (c *counter) cutoff(a machine.Arch, incumbent float64) bool {
	if c.bound == nil || math.IsInf(incumbent, -1) {
		return false
	}
	if _, ok := c.seen[a]; ok {
		return false
	}
	if c.bound(a) > incumbent {
		return false
	}
	c.pruned++
	obs.GetCounter("search.pruned").Inc()
	return true
}

// Exhaustive evaluates every point (the paper's method).
func Exhaustive(space []machine.Arch, obj Objective) Result {
	r, _ := ExhaustiveCtx(context.Background(), space, obj, nil)
	return r
}

// ExhaustiveBounded is Exhaustive with bound-guided pruning: points the
// admissible bound proves cannot beat the incumbent are skipped without
// evaluation. With an admissible bound the returned Best and BestScore
// are identical to Exhaustive's — the incumbent only advances on strict
// improvement, which a pruned point cannot provide — while Evaluations
// drops by exactly Pruned.
func ExhaustiveBounded(space []machine.Arch, obj Objective, bound Bound) Result {
	r, _ := ExhaustiveCtx(context.Background(), space, obj, bound)
	return r
}

// ExhaustiveCtx is ExhaustiveBounded under a context. Cancellation is
// observed before each candidate evaluation; a cancelled search stops
// promptly and returns the best point seen so far together with the
// context's error. An uncancelled run is identical to
// ExhaustiveBounded (pass bound nil for plain Exhaustive).
func ExhaustiveCtx(ctx context.Context, space []machine.Arch, obj Objective, bound Bound) (Result, error) {
	c := newCounter(obj)
	c.bound = bound
	var err error
	best, bestScore := machine.Arch{}, math.Inf(-1)
	for _, a := range space {
		if err = ctx.Err(); err != nil {
			break
		}
		if c.cutoff(a, bestScore) {
			continue
		}
		if v := c.eval(a); v > bestScore {
			best, bestScore = a, v
		}
	}
	return Result{Strategy: "exhaustive", Best: best, BestScore: bestScore, Evaluations: c.evals, Pruned: c.pruned}, err
}

// Neighbors returns the architectures one parameter step away from a
// (plus the compound widen moves the climbers use), restricted to
// points present in the space — the move set of every stochastic
// strategy, exported so equivalence tests can replay exactly the walks
// a search would take (the delta-evaluation property test drives it).
func Neighbors(a machine.Arch, inSpace map[machine.Arch]bool) []machine.Arch {
	var out []machine.Arch
	push := func(n machine.Arch) {
		if inSpace[n] {
			out = append(out, n)
		}
	}
	for _, f := range []func(machine.Arch, int) machine.Arch{
		func(x machine.Arch, d int) machine.Arch { x.ALUs = scale(x.ALUs, d); x.MULs = clampMul(x); return x },
		func(x machine.Arch, d int) machine.Arch { x.MULs = scale(x.MULs, d); return x },
		func(x machine.Arch, d int) machine.Arch { x.Regs = scale(x.Regs, d); return x },
		func(x machine.Arch, d int) machine.Arch { x.L2Ports = scale(x.L2Ports, d); return x },
		func(x machine.Arch, d int) machine.Arch { x.L2Lat = scale(x.L2Lat, d); return x },
		func(x machine.Arch, d int) machine.Arch { x.Clusters = scale(x.Clusters, d); return x },
		// Compound move: widen/narrow the machine at constant per-cluster
		// shape (ALUs and clusters together). Single-axis ALU moves pay
		// the quadratic cycle-time penalty before clustering can recoup
		// it, leaving a ridge that traps ±1-axis local search.
		func(x machine.Arch, d int) machine.Arch {
			x.ALUs = scale(x.ALUs, d)
			x.Clusters = scale(x.Clusters, d)
			x.MULs = clampMul(x)
			return x
		},
		// And the register-file analog: more clusters with the same
		// per-cluster register count.
		func(x machine.Arch, d int) machine.Arch {
			x.ALUs = scale(x.ALUs, d)
			x.Clusters = scale(x.Clusters, d)
			x.Regs = scale(x.Regs, d)
			x.MULs = clampMul(x)
			return x
		},
	} {
		push(f(a, +1))
		push(f(a, -1))
	}
	return out
}

// NeighborsOps is Neighbors extended with the op-set axis: one toggle
// move per op in the space's catalog (enable it if disabled, disable it
// if enabled), each a one-parameter neighbor exactly like the scale
// moves. A nil set returns Neighbors unchanged, so op-free searches
// keep their historical move lists (and hence their RNG streams)
// bit-identical.
func NeighborsOps(a machine.Arch, inSpace map[machine.Arch]bool, set *machine.OpSet) []machine.Arch {
	out := Neighbors(a, inSpace)
	if set == nil {
		return out
	}
	for i := 0; i < set.Len(); i++ {
		// a.Ops.Mask is 0 for the plain point in an op-crossed space, so
		// toggling grows the mask from the space-level catalog even there.
		n := a.WithOps(set, a.Ops.Mask^(1<<uint(i)))
		if inSpace[n] {
			out = append(out, n)
		}
	}
	return out
}

// opCatalog returns the custom-op catalog an op-crossed space draws
// from (nil for op-free spaces). Grids cross one shared catalog
// (machine.CrossOps), so the first populated config identifies it.
func opCatalog(space []machine.Arch) *machine.OpSet {
	for _, a := range space {
		if a.Ops.Set != nil {
			return a.Ops.Set
		}
	}
	return nil
}

func scale(v, dir int) int {
	if dir > 0 {
		return v * 2
	}
	return v / 2
}

// clampMul snaps the multiplier count into the template's legal band
// [a/4, a/2] (floor 1) after an ALU-count move, choosing the nearer
// endpoint so moves stay inside the enumerated space.
func clampMul(a machine.Arch) int {
	lo, hi := a.ALUs/4, a.ALUs/2
	if lo < 1 {
		lo = 1
	}
	if hi < 1 {
		hi = 1
	}
	m := a.MULs
	if m < lo {
		return lo
	}
	if m > hi {
		return hi
	}
	return m
}

// HillClimb runs steepest-ascent hill climbing with random restarts.
func HillClimb(space []machine.Arch, obj Objective, restarts int, seed int64) Result {
	return HillClimbBounded(space, obj, restarts, seed, nil)
}

// HillClimbBounded is HillClimb with bound-guided pruning of neighbor
// evaluations: a neighbor whose bound cannot exceed the current score
// is skipped. Exact for steepest ascent — a pruned neighbor could not
// have been an improving move, so the climb trajectory (and the RNG
// stream, which pruning never touches) is unchanged.
func HillClimbBounded(space []machine.Arch, obj Objective, restarts int, seed int64, bound Bound) Result {
	r, _ := HillClimbCtx(context.Background(), space, obj, restarts, seed, bound)
	return r
}

// HillClimbCtx is HillClimbBounded under a context, checked before the
// restart point and every neighbor evaluation. A cancelled climb
// returns the best point reached so far plus the context's error;
// cancellation never touches the RNG stream, so an uncancelled run is
// identical to HillClimbBounded.
func HillClimbCtx(ctx context.Context, space []machine.Arch, obj Objective, restarts int, seed int64, bound Bound) (Result, error) {
	c := newCounter(obj)
	c.bound = bound
	rng := rand.New(rand.NewSource(seed))
	inSpace := spaceSet(space)
	opSet := opCatalog(space)
	var err error
	best, bestScore := machine.Arch{}, math.Inf(-1)
climb:
	for r := 0; r < restarts; r++ {
		if err = ctx.Err(); err != nil {
			break
		}
		// Restart points are always evaluated: the climb needs a concrete
		// starting score, and a bound on the start says nothing about the
		// points the climb can reach.
		cur := space[rng.Intn(len(space))]
		curScore := c.eval(cur)
		for {
			improved := false
			for _, n := range NeighborsOps(cur, inSpace, opSet) {
				if err = ctx.Err(); err != nil {
					if curScore > bestScore {
						best, bestScore = cur, curScore
					}
					break climb
				}
				if c.cutoff(n, curScore) {
					continue
				}
				if v := c.eval(n); v > curScore {
					cur, curScore = n, v
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if curScore > bestScore {
			best, bestScore = cur, curScore
		}
	}
	return Result{Strategy: "hill-climb", Best: best, BestScore: bestScore, Evaluations: c.evals, Pruned: c.pruned}, err
}

// Anneal runs simulated annealing.
func Anneal(space []machine.Arch, obj Objective, steps int, seed int64) Result {
	r, _ := AnnealCtx(context.Background(), space, obj, steps, seed)
	return r
}

// AnnealCtx is Anneal under a context, checked once per step. A
// cancelled anneal returns the best point seen so far plus the
// context's error; uncancelled runs are identical to Anneal (the RNG
// stream is untouched by the checks).
func AnnealCtx(ctx context.Context, space []machine.Arch, obj Objective, steps int, seed int64) (Result, error) {
	c := newCounter(obj)
	rng := rand.New(rand.NewSource(seed))
	inSpace := spaceSet(space)
	opSet := opCatalog(space)
	pick := func() (machine.Arch, float64) {
		// Resample until a feasible start (objectives return -Inf for
		// over-budget points); give up after a bounded number of tries.
		for i := 0; i < 64; i++ {
			a := space[rng.Intn(len(space))]
			if v := c.eval(a); !math.IsInf(v, -1) {
				return a, v
			}
		}
		a := space[rng.Intn(len(space))]
		return a, c.eval(a)
	}
	cur, curScore := pick()
	best, bestScore := cur, curScore
	t0 := 2.0
	var err error
	for i := 0; i < steps; i++ {
		if err = ctx.Err(); err != nil {
			break
		}
		temp := t0 * math.Exp(-3*float64(i)/float64(steps))
		ns := NeighborsOps(cur, inSpace, opSet)
		if len(ns) == 0 || math.IsInf(curScore, -1) {
			cur, curScore = pick()
			continue
		}
		n := ns[rng.Intn(len(ns))]
		v := c.eval(n)
		if v > curScore || (!math.IsInf(v, -1) && rng.Float64() < math.Exp((v-curScore)/math.Max(temp, 1e-6))) {
			cur, curScore = n, v
		}
		if curScore > bestScore {
			best, bestScore = cur, curScore
		}
	}
	return Result{Strategy: "anneal", Best: best, BestScore: bestScore, Evaluations: c.evals}, err
}

// Genetic runs a small generational GA with tournament selection,
// parameter-wise crossover and step mutation.
func Genetic(space []machine.Arch, obj Objective, generations, popSize int, seed int64) Result {
	r, _ := GeneticCtx(context.Background(), space, obj, generations, popSize, seed)
	return r
}

// GeneticCtx is Genetic under a context, checked once per generation.
// A cancelled run returns the best individual bred so far plus the
// context's error; uncancelled runs are identical to Genetic.
func GeneticCtx(ctx context.Context, space []machine.Arch, obj Objective, generations, popSize int, seed int64) (Result, error) {
	c := newCounter(obj)
	rng := rand.New(rand.NewSource(seed))
	inSpace := spaceSet(space)
	opSet := opCatalog(space)
	pop := make([]machine.Arch, popSize)
	for i := range pop {
		pop[i] = space[rng.Intn(len(space))]
	}
	score := func(a machine.Arch) float64 { return c.eval(a) }
	tournament := func() machine.Arch {
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if score(a) >= score(b) {
			return a
		}
		return b
	}
	crossover := func(a, b machine.Arch) machine.Arch {
		ch := a
		if rng.Intn(2) == 0 {
			ch.ALUs, ch.MULs = b.ALUs, b.MULs
		}
		if rng.Intn(2) == 0 {
			ch.Regs = b.Regs
		}
		if rng.Intn(2) == 0 {
			ch.L2Ports, ch.L2Lat = b.L2Ports, b.L2Lat
		}
		if rng.Intn(2) == 0 {
			ch.Clusters = b.Clusters
		}
		// The ops draw is gated on the space carrying an op axis at all,
		// so op-free populations draw exactly the historical four Intn
		// calls per child and their RNG streams stay bit-identical.
		if opSet != nil && rng.Intn(2) == 0 {
			ch = ch.WithOps(opSet, b.Ops.Mask)
		}
		return ch
	}
	repair := func(a machine.Arch) (machine.Arch, bool) {
		if inSpace[a] {
			return a, true
		}
		// Nudge toward validity via neighbors of a valid parent.
		return a, false
	}
	best, bestScore := machine.Arch{}, math.Inf(-1)
	var err error
	for g := 0; g < generations; g++ {
		if err = ctx.Err(); err != nil {
			break
		}
		next := make([]machine.Arch, 0, popSize)
		for len(next) < popSize {
			child := crossover(tournament(), tournament())
			if rng.Float64() < 0.3 {
				ns := NeighborsOps(child, inSpace, opSet)
				if len(ns) > 0 {
					child = ns[rng.Intn(len(ns))]
				}
			}
			if ok := inSpace[child]; !ok {
				if rep, okRep := repair(child); okRep {
					child = rep
				} else {
					child = space[rng.Intn(len(space))]
				}
			}
			next = append(next, child)
		}
		pop = next
		for _, a := range pop {
			if v := score(a); v > bestScore {
				best, bestScore = a, v
			}
		}
	}
	return Result{Strategy: "genetic", Best: best, BestScore: bestScore, Evaluations: c.evals}, err
}

func spaceSet(space []machine.Arch) map[machine.Arch]bool {
	m := make(map[machine.Arch]bool, len(space))
	for _, a := range space {
		m[a] = true
	}
	return m
}

// Compare runs every strategy against the same objective and normalizes
// scores to the exhaustive optimum.
func Compare(space []machine.Arch, obj Objective, seed int64) []Result {
	return CompareWithBound(space, obj, nil, seed)
}

// CompareWithBound is Compare with an optional admissible bound: the
// deterministic strategies (exhaustive, hill climbing) prune candidates
// the bound rules out, reporting how many evaluations that saved. The
// stochastic strategies (annealing, genetic) run unpruned — their
// trajectories depend on the values of non-improving moves, so pruning
// would change their results rather than just their cost.
func CompareWithBound(space []machine.Arch, obj Objective, bound Bound, seed int64) []Result {
	out, _ := CompareCtx(context.Background(), space, obj, bound, seed)
	return out
}

// CompareCtx is CompareWithBound under a context. The strategies run in
// sequence; cancellation stops the in-flight strategy promptly and
// skips the rest, returning whatever completed (with Optimality
// normalized to the possibly-partial exhaustive score) alongside the
// context's error. Uncancelled, the results are identical to
// CompareWithBound.
func CompareCtx(ctx context.Context, space []machine.Arch, obj Objective, bound Bound, seed int64) ([]Result, error) {
	ex, err := ExhaustiveCtx(ctx, space, obj, bound)
	out := []Result{ex}
	if err == nil {
		var hc Result
		hc, err = HillClimbCtx(ctx, space, obj, 4, seed, bound)
		out = append(out, hc)
	}
	if err == nil {
		var an Result
		an, err = AnnealCtx(ctx, space, obj, len(space)/3, seed)
		out = append(out, an)
	}
	if err == nil {
		var ga Result
		ga, err = GeneticCtx(ctx, space, obj, 8, 12, seed)
		out = append(out, ga)
	}
	for i := range out {
		if ex.BestScore != 0 {
			out[i].Optimality = out[i].BestScore / ex.BestScore
		}
	}
	return out, err
}

// SubLattice returns a dense, neighbor-closed subset of the design
// space for quick search experiments: every axis keeps a contiguous run
// of its values, so the ±1-step neighborhood structure the local
// strategies rely on is intact (a strided sample of the full space
// leaves almost every neighbor missing and starves hill climbing and
// annealing of moves).
func SubLattice() []machine.Arch {
	var out []machine.Arch
	for _, a := range []int{2, 4, 8, 16} {
		m := a / 4
		if m < 1 {
			m = 1
		}
		for _, r := range []int{128, 256, 512} {
			if r < 8*a {
				continue
			}
			for _, p2 := range []int{1, 2, 4} {
				if p2 > a {
					continue
				}
				for _, l2 := range []int{2, 4} {
					for _, c := range []int{1, 2, 4} {
						arch := machine.Arch{ALUs: a, MULs: m, Regs: r, L2Ports: p2, L2Lat: l2, Clusters: c}
						if arch.Validate() != nil || arch.RegsPC() < 16 || c > a {
							continue
						}
						out = append(out, arch)
					}
				}
			}
		}
	}
	return out
}
