package search

import (
	"math"
	"testing"

	"customfit/internal/machine"
)

// slackBound wraps an objective into an admissible bound: obj + slack
// everywhere feasible, preserving -Inf infeasibility. Tight enough to
// prune heavily, loose enough to exercise the ≥-objective contract.
func slackBound(obj Objective, slack float64) Bound {
	return func(a machine.Arch) float64 {
		v := obj(a)
		if math.IsInf(v, -1) {
			return v
		}
		return v + slack
	}
}

func TestExhaustiveBoundedExactAndPrunes(t *testing.T) {
	space := machine.FullSpace()
	obj := costSpeedupObjective(10)
	plain := Exhaustive(space, obj)
	bounded := ExhaustiveBounded(space, obj, slackBound(obj, 0.25))
	if bounded.Best != plain.Best || bounded.BestScore != plain.BestScore {
		t.Fatalf("pruned optimum (%v, %g) differs from exhaustive (%v, %g)",
			bounded.Best, bounded.BestScore, plain.Best, plain.BestScore)
	}
	if bounded.Pruned == 0 {
		t.Error("bound never pruned on the full space")
	}
	if bounded.Evaluations+bounded.Pruned != len(space) {
		t.Errorf("evals %d + pruned %d != space %d",
			bounded.Evaluations, bounded.Pruned, len(space))
	}
	if plain.Pruned != 0 {
		t.Errorf("unbounded exhaustive reports %d pruned", plain.Pruned)
	}
}

func TestHillClimbBoundedExact(t *testing.T) {
	space := machine.FullSpace()
	obj := costSpeedupObjective(10)
	for _, seed := range []int64{1, 7, 42} {
		plain := HillClimb(space, obj, 4, seed)
		bounded := HillClimbBounded(space, obj, 4, seed, slackBound(obj, 0.25))
		if bounded.Best != plain.Best || bounded.BestScore != plain.BestScore {
			t.Fatalf("seed %d: pruned climb found (%v, %g), plain found (%v, %g)",
				seed, bounded.Best, bounded.BestScore, plain.Best, plain.BestScore)
		}
		if bounded.Evaluations > plain.Evaluations {
			t.Errorf("seed %d: pruning increased evaluations %d > %d",
				seed, bounded.Evaluations, plain.Evaluations)
		}
	}
}

// TestCompareWithBoundMatchesCompare pins the headline exactness
// contract: with an admissible bound, every strategy — pruned
// deterministic ones and untouched stochastic ones — reports the same
// Best and BestScore as the unpruned run with the same seed.
func TestCompareWithBoundMatchesCompare(t *testing.T) {
	space := machine.FullSpace()
	obj := costSpeedupObjective(10)
	plain := Compare(space, obj, 42)
	bounded := CompareWithBound(space, obj, slackBound(obj, 0.25), 42)
	if len(plain) != len(bounded) {
		t.Fatalf("strategy counts differ: %d vs %d", len(plain), len(bounded))
	}
	for i := range plain {
		p, b := plain[i], bounded[i]
		if p.Strategy != b.Strategy || p.Best != b.Best || p.BestScore != b.BestScore {
			t.Errorf("%s: bounded (%v, %g) differs from plain (%v, %g)",
				p.Strategy, b.Best, b.BestScore, p.Best, p.BestScore)
		}
		if p.Optimality != b.Optimality {
			t.Errorf("%s: optimality %g vs %g", p.Strategy, b.Optimality, p.Optimality)
		}
	}
}

func TestCompareWithBoundDeterministicForSeed(t *testing.T) {
	space := machine.FullSpace()
	obj := costSpeedupObjective(15)
	bound := slackBound(obj, 0.5)
	a := CompareWithBound(space, obj, bound, 9)
	b := CompareWithBound(space, obj, bound, 9)
	if len(a) != len(b) {
		t.Fatal("strategy counts differ across identical runs")
	}
	for i := range a {
		if a[i].Best != b[i].Best || a[i].BestScore != b[i].BestScore ||
			a[i].Evaluations != b[i].Evaluations || a[i].Pruned != b[i].Pruned {
			t.Errorf("%s not reproducible for fixed seed: %+v vs %+v",
				a[i].Strategy, a[i], b[i])
		}
	}
}
