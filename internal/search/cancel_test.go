package search

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"customfit/internal/machine"
)

// TestCtxVariantsMatchLegacy: under an uncancelled context, every Ctx
// strategy must be bit-identical to its legacy wrapper — the context
// checks may never touch the RNG stream or the visit order.
func TestCtxVariantsMatchLegacy(t *testing.T) {
	space := SubLattice()
	obj := costSpeedupObjective(10)
	ctx := context.Background()
	const seed = 7

	if got, err := ExhaustiveCtx(ctx, space, obj, nil); err != nil {
		t.Fatal(err)
	} else if want := Exhaustive(space, obj); !reflect.DeepEqual(got, want) {
		t.Errorf("ExhaustiveCtx %+v != Exhaustive %+v", got, want)
	}
	if got, err := HillClimbCtx(ctx, space, obj, 4, seed, nil); err != nil {
		t.Fatal(err)
	} else if want := HillClimb(space, obj, 4, seed); !reflect.DeepEqual(got, want) {
		t.Errorf("HillClimbCtx %+v != HillClimb %+v", got, want)
	}
	if got, err := AnnealCtx(ctx, space, obj, 400, seed); err != nil {
		t.Fatal(err)
	} else if want := Anneal(space, obj, 400, seed); !reflect.DeepEqual(got, want) {
		t.Errorf("AnnealCtx %+v != Anneal %+v", got, want)
	}
	if got, err := GeneticCtx(ctx, space, obj, 24, 12, seed); err != nil {
		t.Fatal(err)
	} else if want := Genetic(space, obj, 24, 12, seed); !reflect.DeepEqual(got, want) {
		t.Errorf("GeneticCtx %+v != Genetic %+v", got, want)
	}
	if got, err := CompareCtx(ctx, space, obj, nil, seed); err != nil {
		t.Fatal(err)
	} else if want := Compare(space, obj, seed); !reflect.DeepEqual(got, want) {
		t.Errorf("CompareCtx %+v != Compare %+v", got, want)
	}
}

// TestCtxVariantsCancelPromptly: every strategy must stop quickly once
// the context ends, returning an error that wraps context.Canceled.
func TestCtxVariantsCancelPromptly(t *testing.T) {
	space := SubLattice()
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after a handful of objective calls, mid-strategy.
	calls := 0
	obj := func(a machine.Arch) float64 {
		calls++
		if calls == 5 {
			cancel()
		}
		return costSpeedupObjective(10)(a)
	}
	type run struct {
		name string
		fn   func() error
	}
	runs := []run{
		{"Exhaustive", func() error { _, err := ExhaustiveCtx(ctx, space, obj, nil); return err }},
		{"HillClimb", func() error { _, err := HillClimbCtx(ctx, space, obj, 4, 1, nil); return err }},
		{"Anneal", func() error { _, err := AnnealCtx(ctx, space, obj, 10_000, 1); return err }},
		{"Genetic", func() error { _, err := GeneticCtx(ctx, space, obj, 32, 64, 1); return err }},
		{"Compare", func() error { _, err := CompareCtx(ctx, space, obj, nil, 1); return err }},
	}
	for _, r := range runs {
		calls = 0
		ctx, cancel = context.WithCancel(context.Background())
		err := r.fn()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not wrap context.Canceled", r.name, err)
		}
		// The check granularity is per neighbor/step/generation, so a
		// strategy may finish its current unit; far below a full run.
		if calls > 200 {
			t.Errorf("%s: %d objective calls after cancellation at 5 — not prompt", r.name, calls)
		}
	}
}
