package search

import (
	"context"
	"testing"

	"customfit/internal/machine"
)

func opsTestSet(t *testing.T) *machine.OpSet {
	t.Helper()
	set, err := machine.ParseOpCatalog([]string{
		"mac/3/2:mul $0 $1;add %0 $2",
		"add_add/3/1:add $0 $1;add %0 $2",
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestNeighborsOpsToggles pins the op axis as single-parameter moves:
// from any point of an op-crossed space, flipping one op in or out is a
// neighbor — including from mask-0 points, whose Arch carries no
// catalog of its own (the space-level catalog supplies it).
func TestNeighborsOpsToggles(t *testing.T) {
	set := opsTestSet(t)
	space := machine.CrossOps(SubLattice(), set, []uint64{0, 1, 2, 3})
	in := map[machine.Arch]bool{}
	for _, a := range space {
		in[a] = true
	}
	base := SubLattice()[0]

	fromPlain := NeighborsOps(base, in, set)
	found := map[uint64]bool{}
	for _, n := range fromPlain {
		if n.Ops.Set == set && n.ALUs == base.ALUs && n.MULs == base.MULs && n.Regs == base.Regs &&
			n.L2Ports == base.L2Ports && n.L2Lat == base.L2Lat && n.Clusters == base.Clusters {
			found[n.Ops.Mask] = true
		}
	}
	if !found[1] || !found[2] {
		t.Fatalf("mask-0 point reaches op masks %v, want single-op toggles 1 and 2", found)
	}

	// From full-mask, toggling an op off (down to a single) must be a
	// move, and so must toggling down to mask 0 from a single.
	full := base.WithOps(set, 3)
	sawDown := false
	for _, n := range NeighborsOps(full, in, set) {
		if n.Ops.Set == set && (n.Ops.Mask == 1 || n.Ops.Mask == 2) {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatal("full-mask point cannot toggle an op off")
	}
	one := base.WithOps(set, 1)
	sawZero := false
	for _, n := range NeighborsOps(one, in, set) {
		if n.Ops.Empty() && n.ALUs == base.ALUs && n.Clusters == base.Clusters && n.Regs == base.Regs {
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatal("single-op point cannot toggle back to the plain template")
	}

	// A nil catalog must reduce to the classic neighbor set exactly.
	plainOnly := map[machine.Arch]bool{}
	for _, a := range SubLattice() {
		plainOnly[a] = true
	}
	classic := Neighbors(base, plainOnly)
	viaOps := NeighborsOps(base, plainOnly, nil)
	if len(classic) != len(viaOps) {
		t.Fatalf("nil-catalog NeighborsOps has %d moves, Neighbors has %d", len(viaOps), len(classic))
	}
}

// TestSearchFindsOpOptimum gives hill climbing a smooth objective
// whose optimum requires enabling both ops, and checks it matches the
// exhaustive optimum — reachable only through op-toggle moves.
func TestSearchFindsOpOptimum(t *testing.T) {
	set := opsTestSet(t)
	space := machine.CrossOps(SubLattice(), set, []uint64{0, 1, 2, 3})
	obj := func(a machine.Arch) float64 {
		// Gradient on every axis; each enabled op is worth more than any
		// datapath step, so the optimum has mask 3.
		return float64(a.ALUs+a.MULs) + 100*float64(len(a.Ops.Enabled()))
	}
	want := Exhaustive(space, obj)
	if want.Best.Ops.Mask != 3 {
		t.Fatalf("exhaustive optimum %v should enable both ops", want.Best)
	}
	res, err := HillClimbCtx(context.Background(), space, obj, 16, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore != want.BestScore {
		t.Fatalf("hill climbing found %v (score %g), exhaustive optimum %v (score %g)",
			res.Best, res.BestScore, want.Best, want.BestScore)
	}
	if res.Best.Ops.Empty() {
		t.Fatalf("hill climbing's best %v never toggled an op on", res.Best)
	}
}
