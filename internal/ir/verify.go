package ir

import "fmt"

// Verify checks structural invariants of the function and returns the
// first violation found, or nil. It is run after every pass in tests and
// in the compiler's debug mode.
//
// Checked invariants:
//   - every block is non-empty and ends in exactly one terminator;
//   - terminators appear only in final position;
//   - branch targets are blocks of this function;
//   - operand counts match the opcode;
//   - destination presence matches Op.HasDest;
//   - register ids are within the allocated range;
//   - memory ops carry a MemRef owned by the function;
//   - every register used is defined on every path from entry (a
//     conservative forward dataflow check).
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	memOK := make(map[*MemRef]bool, len(f.Mems))
	for _, m := range f.Mems {
		memOK[m] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s: block %s is empty", f.Name, b.Name)
		}
		for i, in := range b.Instrs {
			last := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				if last {
					return fmt.Errorf("%s: block %s does not end in a terminator", f.Name, b.Name)
				}
				return fmt.Errorf("%s: block %s has terminator %s mid-block", f.Name, b.Name, in)
			}
			if err := f.verifyInstr(b, in, inFunc, memOK); err != nil {
				return err
			}
		}
	}
	return f.verifyDefsDominate()
}

func (f *Func) verifyInstr(b *Block, in *Instr, inFunc map[*Block]bool, memOK map[*MemRef]bool) error {
	if in.Op == OpFused {
		if in.Fused == nil {
			return fmt.Errorf("%s/%s: %s has nil fused spec", f.Name, b.Name, in)
		}
		if err := in.Fused.Validate(); err != nil {
			return fmt.Errorf("%s/%s: %s: %w", f.Name, b.Name, in, err)
		}
		if got, want := len(in.Args), in.Fused.NIn; got != want {
			return fmt.Errorf("%s/%s: %s has %d args, spec wants %d", f.Name, b.Name, in, got, want)
		}
	} else {
		if in.Fused != nil {
			return fmt.Errorf("%s/%s: %s has spurious fused spec", f.Name, b.Name, in)
		}
		if got, want := len(in.Args), in.Op.NArgs(); got != want {
			return fmt.Errorf("%s/%s: %s has %d args, want %d", f.Name, b.Name, in, got, want)
		}
	}
	if in.Op.HasDest() {
		if in.Dest == NoReg {
			return fmt.Errorf("%s/%s: %s missing destination", f.Name, b.Name, in)
		}
		if int(in.Dest) >= f.NumRegs() {
			return fmt.Errorf("%s/%s: %s dest out of range (%d regs)", f.Name, b.Name, in, f.NumRegs())
		}
	} else if in.Dest != NoReg {
		return fmt.Errorf("%s/%s: %s has spurious destination", f.Name, b.Name, in)
	}
	for _, a := range in.Args {
		if a.Kind == OperReg && (a.Reg < 0 || int(a.Reg) >= f.NumRegs()) {
			return fmt.Errorf("%s/%s: %s uses out-of-range register %d", f.Name, b.Name, in, a.Reg)
		}
	}
	if in.Op.IsMem() {
		if in.Mem == nil {
			return fmt.Errorf("%s/%s: %s has nil MemRef", f.Name, b.Name, in)
		}
		if !memOK[in.Mem] {
			return fmt.Errorf("%s/%s: %s references foreign MemRef %s", f.Name, b.Name, in, in.Mem.Name)
		}
		if in.Op == OpStore && in.Mem.Const {
			return fmt.Errorf("%s/%s: %s writes constant memory %s", f.Name, b.Name, in, in.Mem.Name)
		}
	} else if in.Mem != nil {
		return fmt.Errorf("%s/%s: %s has spurious MemRef", f.Name, b.Name, in)
	}
	switch in.Op {
	case OpBr:
		if len(in.Targets) != 1 {
			return fmt.Errorf("%s/%s: br with %d targets", f.Name, b.Name, len(in.Targets))
		}
	case OpCBr:
		if len(in.Targets) != 2 {
			return fmt.Errorf("%s/%s: cbr with %d targets", f.Name, b.Name, len(in.Targets))
		}
	default:
		if len(in.Targets) != 0 {
			return fmt.Errorf("%s/%s: %s has spurious targets", f.Name, b.Name, in)
		}
	}
	for _, t := range in.Targets {
		if !inFunc[t] {
			return fmt.Errorf("%s/%s: branch to foreign block %s", f.Name, b.Name, t.Name)
		}
	}
	return nil
}

// verifyDefsDominate runs a forward "definitely-assigned" dataflow: a
// register may be used only if it is defined on every path from entry.
func (f *Func) verifyDefsDominate() error {
	f.ComputeCFG()
	n := f.NumRegs()
	// in[b] = set of registers definitely defined at entry to b.
	in := make(map[*Block]*bitset, len(f.Blocks))
	full := newBitset(n)
	for i := 0; i < n; i++ {
		full.set(i)
	}
	for _, b := range f.Blocks {
		in[b] = full.clone() // top = all defined; entry handled below
	}
	entrySet := newBitset(n)
	for _, p := range f.Params {
		entrySet.set(int(p.Reg))
	}
	in[f.Entry()] = entrySet
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			cur := in[b].clone()
			for _, instr := range b.Instrs {
				if instr.Op.HasDest() {
					cur.set(int(instr.Dest))
				}
			}
			for _, s := range b.Succs {
				if in[s].intersectWith(cur) {
					changed = true
				}
			}
		}
	}
	for _, b := range f.Blocks {
		cur := in[b].clone()
		for _, instr := range b.Instrs {
			for _, a := range instr.Args {
				if a.Kind == OperReg && !cur.get(int(a.Reg)) {
					return fmt.Errorf("%s/%s: %s uses possibly-undefined register %s", f.Name, b.Name, instr, a.Reg)
				}
			}
			if instr.Op.HasDest() {
				cur.set(int(instr.Dest))
			}
		}
	}
	return nil
}

// bitset is a minimal dense bitset used by dataflow analyses.
type bitset struct{ w []uint64 }

func newBitset(n int) *bitset { return &bitset{w: make([]uint64, (n+63)/64)} }

func (s *bitset) set(i int)      { s.w[i/64] |= 1 << (uint(i) % 64) }
func (s *bitset) get(i int) bool { return s.w[i/64]&(1<<(uint(i)%64)) != 0 }

func (s *bitset) clone() *bitset {
	return &bitset{w: append([]uint64(nil), s.w...)}
}

// intersectWith intersects s with o in place and reports whether s changed.
func (s *bitset) intersectWith(o *bitset) bool {
	changed := false
	for i := range s.w {
		nw := s.w[i] & o.w[i]
		if nw != s.w[i] {
			changed = true
			s.w[i] = nw
		}
	}
	return changed
}
