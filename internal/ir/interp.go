package ir

import "fmt"

// Env binds a function's parameters and memories for direct IR
// interpretation. The interpreter is the semantic reference for the
// whole pipeline: frontend tests check lowered IR against hand
// computations, optimizer tests check pass input vs output, and the
// VLIW simulator is cross-checked against it.
type Env struct {
	// Args are scalar parameter values in declaration order.
	Args []int32
	// Mem maps MemRef names to backing storage (element-wide values in
	// canonical stored form). Parameter arrays must be bound; local and
	// global arrays are allocated automatically if absent.
	Mem map[string][]int32
	// MaxSteps bounds execution; 0 means the default (50M instructions).
	MaxSteps int
	// Visits, when non-nil, accumulates per-block execution counts by
	// block name. Block visit counts are architecture-independent, so
	// the explorer interprets a kernel once and prices its schedule on
	// every machine via vliw.Program.StaticCycles.
	Visits map[string]int64
}

// NewEnv creates an environment with the given scalar arguments.
func NewEnv(args ...int32) *Env {
	return &Env{Args: args, Mem: map[string][]int32{}}
}

// Bind attaches backing storage for a memory reference by name.
func (e *Env) Bind(name string, data []int32) *Env {
	e.Mem[name] = data
	return e
}

// Interp executes f over env, mutating bound memories in place.
// It returns the number of instructions executed.
func Interp(f *Func, env *Env) (int, error) {
	if len(env.Args) != len(f.Params) {
		return 0, fmt.Errorf("interp %s: %d args for %d params", f.Name, len(env.Args), len(f.Params))
	}
	regs := make([]int32, f.NumRegs())
	for i, p := range f.Params {
		regs[p.Reg] = env.Args[i]
	}
	mems := make(map[*MemRef][]int32, len(f.Mems))
	for _, m := range f.Mems {
		data, ok := env.Mem[m.Name]
		if !ok {
			if m.IsParam {
				return 0, fmt.Errorf("interp %s: parameter array %q not bound", f.Name, m.Name)
			}
			data = make([]int32, m.Size)
			env.Mem[m.Name] = data
		}
		if m.Size > 0 && len(data) < m.Size {
			return 0, fmt.Errorf("interp %s: memory %q has %d elements, needs %d", f.Name, m.Name, len(data), m.Size)
		}
		for i, v := range m.Init {
			data[i] = v
		}
		mems[m] = data
	}
	limit := env.MaxSteps
	if limit == 0 {
		limit = 50_000_000
	}

	steps := 0
	blk := f.Entry()
	if env.Visits != nil {
		env.Visits[blk.Name]++
	}
	pc := 0
	arg := func(o Operand) int32 {
		if o.Kind == OperImm {
			return o.Imm
		}
		return regs[o.Reg]
	}
	for {
		if pc >= len(blk.Instrs) {
			return steps, fmt.Errorf("interp %s: fell off end of block %s", f.Name, blk.Name)
		}
		in := blk.Instrs[pc]
		steps++
		if steps > limit {
			return steps, fmt.Errorf("interp %s: exceeded %d steps (infinite loop?)", f.Name, limit)
		}
		switch in.Op {
		case OpNop:
		case OpLoad:
			data := mems[in.Mem]
			idx := int(arg(in.Args[0])) + int(in.Off)
			if idx < 0 || idx >= len(data) {
				return steps, fmt.Errorf("interp %s/%s: load %s[%d] out of bounds (len %d)", f.Name, blk.Name, in.Mem.Name, idx, len(data))
			}
			regs[in.Dest] = in.Elem.Extend(data[idx])
		case OpStore:
			data := mems[in.Mem]
			idx := int(arg(in.Args[0])) + int(in.Off)
			if idx < 0 || idx >= len(data) {
				return steps, fmt.Errorf("interp %s/%s: store %s[%d] out of bounds (len %d)", f.Name, blk.Name, in.Mem.Name, idx, len(data))
			}
			data[idx] = in.Elem.Truncate(arg(in.Args[1]))
		case OpBr:
			blk, pc = in.Targets[0], 0
			if env.Visits != nil {
				env.Visits[blk.Name]++
			}
			continue
		case OpCBr:
			if arg(in.Args[0]) != 0 {
				blk = in.Targets[0]
			} else {
				blk = in.Targets[1]
			}
			pc = 0
			if env.Visits != nil {
				env.Visits[blk.Name]++
			}
			continue
		case OpRet:
			return steps, nil
		case OpFused:
			vals := make([]int32, len(in.Args))
			for i, a := range in.Args {
				vals[i] = arg(a)
			}
			regs[in.Dest] = in.Fused.Eval(vals)
		default:
			vals := make([]int32, len(in.Args))
			for i, a := range in.Args {
				vals[i] = arg(a)
			}
			regs[in.Dest] = in.Op.Eval(vals...)
		}
		pc++
	}
}
