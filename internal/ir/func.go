package ir

import "fmt"

// MemRef names an array in one of the two memory spaces. Kernel
// parameters (image rows) live in L2; locals, constant tables and spill
// slots live in L1.
type MemRef struct {
	Name    string
	Space   Space
	Elem    ElemType
	Size    int     // number of elements; 0 = unknown (parameter arrays)
	IsParam bool    // bound by the caller
	Global  bool    // file-level storage persisting across invocations
	Const   bool    // read-only constant table
	Init    []int32 // initial contents for locals/constants
}

func (m *MemRef) String() string {
	return fmt.Sprintf("%s %s[%d]@%s", m.Elem, m.Name, m.Size, m.Space)
}

// Param is a scalar kernel parameter bound to a virtual register on entry.
type Param struct {
	Name string
	Reg  Reg
}

// Block is a basic block: a straight-line run of instructions ending in
// a terminator.
type Block struct {
	Name   string
	Instrs []*Instr

	// Preds/Succs are recomputed by Func.ComputeCFG.
	Preds []*Block
	Succs []*Block
}

// Terminator returns the block's final instruction, or nil if the block
// is empty or unterminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Body returns the block's instructions excluding its terminator.
func (b *Block) Body() []*Instr {
	if b.Terminator() != nil {
		return b.Instrs[:len(b.Instrs)-1]
	}
	return b.Instrs
}

// Append adds an instruction to the end of the block.
func (b *Block) Append(in *Instr) *Instr {
	b.Instrs = append(b.Instrs, in)
	return in
}

// Func is a compiled kernel: scalar parameters, memory references and a
// CFG of basic blocks. Entry is Blocks[0].
type Func struct {
	Name    string
	Params  []Param   // scalar parameters, in declaration order
	Mems    []*MemRef // all memory references (params first, then locals)
	Blocks  []*Block
	Loop    *LoopInfo // the schedulable pixel loop, if any
	nextReg Reg
	nextBlk int
}

// NewFunc creates an empty function.
func NewFunc(name string) *Func {
	return &Func{Name: name}
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := f.nextReg
	f.nextReg++
	return r
}

// NumRegs returns the number of virtual registers allocated so far.
func (f *Func) NumRegs() int { return int(f.nextReg) }

// SetNumRegs raises the virtual register counter; used by passes that
// renumber registers wholesale.
func (f *Func) SetNumRegs(n int) {
	if Reg(n) > f.nextReg {
		f.nextReg = Reg(n)
	}
}

// NewBlock creates a new basic block with a unique name derived from hint.
func (f *Func) NewBlock(hint string) *Block {
	b := &Block{Name: fmt.Sprintf("%s%d", hint, f.nextBlk)}
	f.nextBlk++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// AddScalarParam declares a scalar parameter bound to a fresh register.
func (f *Func) AddScalarParam(name string) Param {
	p := Param{Name: name, Reg: f.NewReg()}
	f.Params = append(f.Params, p)
	return p
}

// AddMem declares a memory reference.
func (f *Func) AddMem(m *MemRef) *MemRef {
	f.Mems = append(f.Mems, m)
	return m
}

// MemByName looks up a memory reference by name, or nil.
func (f *Func) MemByName(name string) *MemRef {
	for _, m := range f.Mems {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// ComputeCFG recomputes predecessor and successor lists from terminators.
func (f *Func) ComputeCFG() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for _, s := range t.Targets {
			b.Succs = append(b.Succs, s)
			s.Preds = append(s.Preds, b)
		}
	}
}

// RemoveUnreachable drops blocks not reachable from the entry and
// recomputes the CFG. It returns the number of blocks removed.
func (f *Func) RemoveUnreachable() int {
	if len(f.Blocks) == 0 {
		return 0
	}
	f.ComputeCFG()
	seen := map[*Block]bool{f.Blocks[0]: true}
	work := []*Block{f.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	kept := f.Blocks[:0]
	removed := 0
	for _, b := range f.Blocks {
		if seen[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	f.Blocks = kept
	f.ComputeCFG()
	return removed
}

// CloneShell clones the function's header — parameters, memory
// references, register/block counters and loop metadata — plus empty
// same-named blocks, returning the new function and the old→new block
// mapping. Callers fill each block's instruction list (remapping branch
// targets through the map) and then call ComputeCFG; see Clone for the
// plain deep copy and sched.PartitionClone for a fused fill.
func (f *Func) CloneShell() (*Func, map[*Block]*Block) {
	nf := &Func{
		Name:    f.Name,
		Params:  append([]Param(nil), f.Params...),
		Mems:    append([]*MemRef(nil), f.Mems...),
		nextReg: f.nextReg,
		nextBlk: f.nextBlk,
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name}
		bmap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	if f.Loop != nil {
		nf.Loop = f.Loop.remap(bmap)
	}
	return nf, bmap
}

// Clone returns a deep copy of the function. MemRefs are shared (they
// are identity objects naming storage, not mutable state).
func (f *Func) Clone() *Func {
	nf, bmap := f.CloneShell()
	for i, b := range f.Blocks {
		nb := nf.Blocks[i]
		nb.Instrs = make([]*Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			cp := in.Clone()
			for j, t := range cp.Targets {
				cp.Targets[j] = bmap[t]
			}
			nb.Instrs = append(nb.Instrs, cp)
		}
	}
	nf.ComputeCFG()
	return nf
}

// NumInstrs returns the total instruction count across all blocks.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}
