// Package ir defines the intermediate representation used by the
// custom-fit compiler pipeline.
//
// The IR is a typed three-address code over 32-bit integer virtual
// registers, organized into basic blocks forming a control-flow graph.
// Memory is addressed through named MemRefs (arrays) carrying an element
// type and an address-space tag (Level-1 or Level-2 memory, following
// the paper's terminology: L1 is the fixed 3-cycle single-port global
// store, L2 is the configurable streaming store).
//
// All scalar computation is 32-bit; element types only affect the width
// and extension behaviour of loads and stores, exactly as in the fixed-
// point image kernels the paper evaluates.
package ir

import "fmt"

// ElemType is the storage element type of a memory reference.
type ElemType uint8

const (
	// ElemU8 is an unsigned byte; loads zero-extend, stores truncate.
	ElemU8 ElemType = iota
	// ElemI8 is a signed byte; loads sign-extend, stores truncate.
	ElemI8
	// ElemU16 is an unsigned halfword; loads zero-extend, stores truncate.
	ElemU16
	// ElemI16 is a signed halfword; loads sign-extend, stores truncate.
	ElemI16
	// ElemI32 is a full 32-bit word.
	ElemI32
)

// Size returns the element size in bytes.
func (t ElemType) Size() int {
	switch t {
	case ElemU8, ElemI8:
		return 1
	case ElemU16, ElemI16:
		return 2
	case ElemI32:
		return 4
	}
	panic(fmt.Sprintf("ir: invalid ElemType %d", t))
}

func (t ElemType) String() string {
	switch t {
	case ElemU8:
		return "u8"
	case ElemI8:
		return "i8"
	case ElemU16:
		return "u16"
	case ElemI16:
		return "i16"
	case ElemI32:
		return "i32"
	}
	return fmt.Sprintf("ElemType(%d)", uint8(t))
}

// Extend converts a raw stored value of type t into its 32-bit register
// representation (zero- or sign-extension).
func (t ElemType) Extend(v int32) int32 {
	switch t {
	case ElemU8:
		return v & 0xff
	case ElemI8:
		return int32(int8(v))
	case ElemU16:
		return v & 0xffff
	case ElemI16:
		return int32(int16(v))
	case ElemI32:
		return v
	}
	panic(fmt.Sprintf("ir: invalid ElemType %d", t))
}

// Truncate converts a 32-bit register value into the canonical stored
// representation for type t.
func (t ElemType) Truncate(v int32) int32 {
	return t.Extend(v)
}

// Space is a memory address space in the paper's two-level hierarchy.
type Space uint8

const (
	// L1 is "Level 1 Memory": the system's global store, always a single
	// port with a fixed 3-cycle non-pipelined latency. Local scratch
	// arrays, constant tables and spill slots live here.
	L1 Space = iota
	// L2 is "Level 2 Memory": the configurable store whose port count
	// (1..4) and latency (2..8 cycles, non-pipelined) are architecture
	// parameters. Kernel parameter arrays (image rows) live here.
	L2
)

func (s Space) String() string {
	switch s {
	case L1:
		return "L1"
	case L2:
		return "L2"
	}
	return fmt.Sprintf("Space(%d)", uint8(s))
}
