package ir

// LoopInfo describes the kernel's schedulable pixel loop in rotated
// form. The frontend fully unrolls constant-trip inner loops at lowering
// time, so a kernel carries at most one LoopInfo: the streaming loop
// over output pixels whose unroll factor the design-space explorer
// varies ("unroll until the compiler spills").
//
// Rotated shape:
//
//	Preheader: ... guard = cmplt i, limit; cbr guard, Header, Exit
//	Header:    <kernel body> ... i = i + Step; t = cmplt i, limit; cbr t, Header, Exit
//	Exit:      ...
//
// When Header == Latch the loop body is a single basic block and is
// eligible for unrolling; if-conversion is what typically collapses a
// multi-block body into this form.
type LoopInfo struct {
	Preheader *Block
	Header    *Block // loop entry; equals Latch for single-block loops
	Latch     *Block // block carrying the back edge
	Exit      *Block

	IndVar Reg     // home register of the induction variable
	Limit  Operand // loop bound (i < Limit)
	Step   int32   // induction increment, currently always 1
}

// SingleBlock reports whether the loop body is one basic block and thus
// eligible for unrolling and software-pipelining-style scheduling.
func (l *LoopInfo) SingleBlock() bool { return l.Header == l.Latch }

// remap rewires block pointers through m (used by Func.Clone).
func (l *LoopInfo) remap(m map[*Block]*Block) *LoopInfo {
	cp := *l
	if b, ok := m[l.Preheader]; ok {
		cp.Preheader = b
	}
	if b, ok := m[l.Header]; ok {
		cp.Header = b
	}
	if b, ok := m[l.Latch]; ok {
		cp.Latch = b
	}
	if b, ok := m[l.Exit]; ok {
		cp.Exit = b
	}
	return &cp
}
