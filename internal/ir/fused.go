package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// FusedSpec describes a custom fused operation: a small DAG of simple
// ALU steps chained into one issue slot on a dedicated custom unit.
// This is the IR-level shape of the paper's "let the application define
// the architecture" idea extended to the instruction set: the op miner
// (internal/ops) extracts recurring dataflow clusters (MAC, SAD,
// clip/saturate) from the kernels' DDGs, and the architecture template
// (machine.Arch.Ops) carries a set of these specs as a design-space
// axis alongside ALU and register counts.
//
// A spec is architecture metadata, not program text: instructions refer
// to it by pointer (Instr.Fused) and specs are immutable after
// construction, so sharing the pointer across cloned functions is safe.
type FusedSpec struct {
	// Name is the human-readable mnemonic ("mac", "sad", ...). It is
	// display-only: Key excludes it, so two specs with the same dataflow
	// are the same op regardless of naming.
	Name string
	// NIn is the number of external inputs (the fused instruction's
	// operand count). The custom datapath bounds it: machine.MaxFusedIn.
	NIn int
	// Lat is the issue-to-result latency in cycles. The miner models it
	// as the chained-ALU critical path with the paper-style derating of
	// two chained simple stages per cycle (see ChainLatency), but a spec
	// loaded from a file may carry its own figure.
	Lat int
	// Steps is the internal dataflow in topological order; the last
	// step's result is the instruction's destination value.
	Steps []FusedStep
}

// FusedStep is one internal operation of a fused spec. A and B are
// operand references: Ext(i) refers to external input i, StepRef(i) to
// the result of Steps[i] (which must precede this step). Unary ops
// (Op.NArgs() == 1) ignore B.
type FusedStep struct {
	Op   Op
	A, B int
}

// Ext encodes a reference to external input i.
func Ext(i int) int { return i }

// StepRef encodes a reference to the result of step i.
func StepRef(i int) int { return ^i }

// IsStepRef reports whether ref names an internal step result.
func IsStepRef(ref int) bool { return ref < 0 }

// RefStep decodes a step reference produced by StepRef.
func RefStep(ref int) int { return ^ref }

// refString renders an operand reference in the codec's syntax.
func refString(ref int) string {
	if IsStepRef(ref) {
		return fmt.Sprintf("%%%d", RefStep(ref))
	}
	return fmt.Sprintf("$%d", ref)
}

// Validate checks internal consistency: operand counts, topological
// step references, in-range external inputs, and a positive latency.
func (s *FusedSpec) Validate() error {
	if s.NIn < 1 {
		return fmt.Errorf("ir: fused %q: NIn %d < 1", s.Name, s.NIn)
	}
	if s.Lat < 1 {
		return fmt.Errorf("ir: fused %q: latency %d < 1", s.Name, s.Lat)
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("ir: fused %q: no steps", s.Name)
	}
	for i, st := range s.Steps {
		// Fusable steps are the two-operand ALU ops (plus nothing else:
		// moves are free on the chained datapath, select's three operands
		// do not fit a step, and fused-in-fused is not a thing).
		if !st.Op.IsALU() || st.Op.NArgs() != 2 || st.Op == OpFused {
			return fmt.Errorf("ir: fused %q: step %d op %s is not a fusable ALU op", s.Name, i, st.Op)
		}
		refs := []int{st.A, st.B}
		for _, r := range refs {
			if IsStepRef(r) {
				if j := RefStep(r); j < 0 || j >= i {
					return fmt.Errorf("ir: fused %q: step %d references step %d (not topological)", s.Name, i, j)
				}
			} else if r < 0 || r >= s.NIn {
				return fmt.Errorf("ir: fused %q: step %d input $%d out of range [0,%d)", s.Name, i, r, s.NIn)
			}
		}
	}
	return nil
}

// Eval computes the fused result on concrete inputs; it is shared by
// the constant-free simulator paths exactly like Op.Eval, so the fused
// and unfused programs can never disagree.
func (s *FusedSpec) Eval(in []int32) int32 {
	tmp := make([]int32, len(s.Steps))
	ref := func(r int) int32 {
		if IsStepRef(r) {
			return tmp[RefStep(r)]
		}
		return in[r]
	}
	for i, st := range s.Steps {
		if st.Op.NArgs() == 1 {
			tmp[i] = st.Op.Eval(ref(st.A))
		} else {
			tmp[i] = st.Op.Eval(ref(st.A), ref(st.B))
		}
	}
	return tmp[len(tmp)-1]
}

// stepLat is the latency a step contributes on the chained datapath.
func stepLat(op Op) int {
	if op == OpMul {
		return 2 // LatMUL; machine and ir agree by construction
	}
	return 1 // LatALU
}

// Depth returns the latency-weighted critical path through the steps:
// the cycles the same dataflow costs as individual ALU/MUL operations.
func (s *FusedSpec) Depth() int {
	d := make([]int, len(s.Steps))
	ref := func(r int) int {
		if IsStepRef(r) {
			return d[RefStep(r)]
		}
		return 0
	}
	max := 0
	for i, st := range s.Steps {
		at := ref(st.A)
		if st.Op.NArgs() > 1 {
			if b := ref(st.B); b > at {
				at = b
			}
		}
		d[i] = at + stepLat(st.Op)
		if d[i] > max {
			max = d[i]
		}
	}
	return max
}

// ChainLatency is the miner's latency model for a fused op: the chained
// custom datapath evaluates the whole cluster with two simple stages
// per cycle (the paper's derating for chained ALUs), never faster than
// one cycle.
func (s *FusedSpec) ChainLatency() int {
	l := (s.Depth() + 1) / 2
	if l < 1 {
		l = 1
	}
	return l
}

// ALUSteps counts the simple (latency-1) internal steps; MULSteps the
// multiply steps. The cost model prices the custom unit from these.
func (s *FusedSpec) ALUSteps() int {
	n := 0
	for _, st := range s.Steps {
		if st.Op != OpMul {
			n++
		}
	}
	return n
}

// MULSteps counts the internal multiply steps.
func (s *FusedSpec) MULSteps() int {
	n := 0
	for _, st := range s.Steps {
		if st.Op == OpMul {
			n++
		}
	}
	return n
}

// Key returns the spec's canonical content key: the codec text without
// the display name. Two specs are the same custom op iff their keys are
// equal; op-set interning, memo signatures, cache keys and the wire
// protocol all build on it.
func (s *FusedSpec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d:", s.NIn, s.Lat)
	for i, st := range s.Steps {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(st.Op.String())
		b.WriteByte(' ')
		b.WriteString(refString(st.A))
		if st.Op.NArgs() > 1 {
			b.WriteByte(' ')
			b.WriteString(refString(st.B))
		}
	}
	return b.String()
}

// String renders the full codec form "name/nin/lat: step; step; ...",
// the wire and file format ParseFusedSpec reads back.
func (s *FusedSpec) String() string {
	return fmt.Sprintf("%s/%s", s.Name, s.Key())
}

// opByName resolves codec mnemonics; built once from opNames.
var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// ParseFusedSpec parses the codec form produced by String:
//
//	mac/3/2: mul $0 $1; add %0 $2
//
// where $i is external input i and %i the result of step i. The parsed
// spec is validated.
func ParseFusedSpec(text string) (*FusedSpec, error) {
	head, body, ok := strings.Cut(text, ":")
	if !ok {
		return nil, fmt.Errorf("ir: fused spec %q: missing ':'", text)
	}
	parts := strings.Split(strings.TrimSpace(head), "/")
	if len(parts) != 3 {
		return nil, fmt.Errorf("ir: fused spec %q: header must be name/nin/lat", text)
	}
	name := strings.TrimSpace(parts[0])
	nin, err1 := strconv.Atoi(strings.TrimSpace(parts[1]))
	lat, err2 := strconv.Atoi(strings.TrimSpace(parts[2]))
	if name == "" || err1 != nil || err2 != nil {
		return nil, fmt.Errorf("ir: fused spec %q: bad header", text)
	}
	s := &FusedSpec{Name: name, NIn: nin, Lat: lat}
	for _, stepText := range strings.Split(body, ";") {
		fields := strings.Fields(stepText)
		if len(fields) == 0 {
			return nil, fmt.Errorf("ir: fused spec %q: empty step", text)
		}
		op, ok := opByName[fields[0]]
		if !ok {
			return nil, fmt.Errorf("ir: fused spec %q: unknown op %q", text, fields[0])
		}
		if want := op.NArgs(); len(fields)-1 != want {
			return nil, fmt.Errorf("ir: fused spec %q: op %s wants %d operands, got %d", text, op, want, len(fields)-1)
		}
		st := FusedStep{Op: op}
		for i, f := range fields[1:] {
			ref, err := parseRef(f)
			if err != nil {
				return nil, fmt.Errorf("ir: fused spec %q: %w", text, err)
			}
			if i == 0 {
				st.A = ref
			} else {
				st.B = ref
			}
		}
		s.Steps = append(s.Steps, st)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseRef(f string) (int, error) {
	if len(f) < 2 || (f[0] != '$' && f[0] != '%') {
		return 0, fmt.Errorf("bad operand reference %q", f)
	}
	n, err := strconv.Atoi(f[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad operand reference %q", f)
	}
	if f[0] == '%' {
		return StepRef(n), nil
	}
	return Ext(n), nil
}
