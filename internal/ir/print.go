package ir

import (
	"fmt"
	"strings"
)

// String renders the function as readable IR assembly, used in tests,
// golden files and the cfp-compile tool's -dump output.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", p.Name, p.Reg)
	}
	sb.WriteString(")\n")
	for _, m := range f.Mems {
		fmt.Fprintf(&sb, "  mem %s\n", m)
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	return sb.String()
}
