package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestElemTypeSizes(t *testing.T) {
	cases := []struct {
		t ElemType
		n int
	}{{ElemU8, 1}, {ElemI8, 1}, {ElemU16, 2}, {ElemI16, 2}, {ElemI32, 4}}
	for _, c := range cases {
		if got := c.t.Size(); got != c.n {
			t.Errorf("%s.Size() = %d, want %d", c.t, got, c.n)
		}
	}
}

func TestElemTypeExtend(t *testing.T) {
	cases := []struct {
		t       ElemType
		in, out int32
	}{
		{ElemU8, 0x1ff, 0xff},
		{ElemU8, -1, 0xff},
		{ElemI8, 0xff, -1},
		{ElemI8, 0x7f, 127},
		{ElemU16, -1, 0xffff},
		{ElemI16, 0x8000, -32768},
		{ElemI16, 0x7fff, 32767},
		{ElemI32, -12345, -12345},
	}
	for _, c := range cases {
		if got := c.t.Extend(c.in); got != c.out {
			t.Errorf("%s.Extend(%#x) = %d, want %d", c.t, c.in, got, c.out)
		}
	}
}

func TestElemTypeExtendIdempotent(t *testing.T) {
	// Property: Extend is idempotent for every element type.
	for _, et := range []ElemType{ElemU8, ElemI8, ElemU16, ElemI16, ElemI32} {
		et := et
		f := func(v int32) bool { return et.Extend(et.Extend(v)) == et.Extend(v) }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", et, err)
		}
	}
}

func TestOpEvalBasics(t *testing.T) {
	cases := []struct {
		op   Op
		args []int32
		want int32
	}{
		{OpAdd, []int32{2, 3}, 5},
		{OpSub, []int32{2, 3}, -1},
		{OpMul, []int32{-4, 3}, -12},
		{OpShl, []int32{1, 4}, 16},
		{OpShrA, []int32{-16, 2}, -4},
		{OpShrU, []int32{-16, 2}, int32(uint32(0xfffffff0) >> 2)},
		{OpAnd, []int32{0xff, 0x0f}, 0x0f},
		{OpOr, []int32{0xf0, 0x0f}, 0xff},
		{OpXor, []int32{0xff, 0x0f}, 0xf0},
		{OpCmpEQ, []int32{3, 3}, 1},
		{OpCmpNE, []int32{3, 3}, 0},
		{OpCmpLT, []int32{-1, 0}, 1},
		{OpCmpLE, []int32{0, 0}, 1},
		{OpCmpGT, []int32{1, 0}, 1},
		{OpCmpGE, []int32{-1, 0}, 0},
		{OpSelect, []int32{1, 10, 20}, 10},
		{OpSelect, []int32{0, 10, 20}, 20},
		{OpMov, []int32{7}, 7},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.args...); got != c.want {
			t.Errorf("%s%v = %d, want %d", c.op, c.args, got, c.want)
		}
	}
}

func TestOpCommutativity(t *testing.T) {
	// Property: ops claiming commutativity really commute.
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpCmpEQ, OpCmpNE, OpCmpLT, OpShl} {
		op := op
		f := func(a, b int32) bool {
			if !op.IsCommutative() {
				return true
			}
			return op.Eval(a, b) == op.Eval(b, a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

func TestOpShiftMasking(t *testing.T) {
	// Shifts use only the low 5 bits of the count, like real hardware.
	f := func(v int32, s int32) bool {
		return OpShl.Eval(v, s) == OpShl.Eval(v, s&31) &&
			OpShrA.Eval(v, s) == OpShrA.Eval(v, s&31) &&
			OpShrU.Eval(v, s) == OpShrU.Eval(v, s&31)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildLoop constructs a small well-formed counting loop used by several tests:
//
//	entry: c = cmplt 0, n; cbr c, loop, exit
//	loop:  s += i; i += 1; t = cmplt i, n; cbr t, loop, exit
//	exit:  ret
func buildLoop(t *testing.T) *Func {
	t.Helper()
	f := NewFunc("count")
	n := f.AddScalarParam("n")
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	i, s := f.NewReg(), f.NewReg()
	c0 := f.NewReg()
	entry.Append(NewInstr(OpMov, i, Imm(0)))
	entry.Append(NewInstr(OpMov, s, Imm(0)))
	entry.Append(NewInstr(OpCmpLT, c0, Imm(0), R(n.Reg)))
	entry.Append(&Instr{Op: OpCBr, Dest: NoReg, Args: []Operand{R(c0)}, Targets: []*Block{loop, exit}})

	s2, i2, tc := f.NewReg(), f.NewReg(), f.NewReg()
	loop.Append(NewInstr(OpAdd, s2, R(s), R(i)))
	loop.Append(NewInstr(OpAdd, i2, R(i), Imm(1)))
	loop.Append(NewInstr(OpMov, s, R(s2)))
	loop.Append(NewInstr(OpMov, i, R(i2)))
	loop.Append(NewInstr(OpCmpLT, tc, R(i2), R(n.Reg)))
	loop.Append(&Instr{Op: OpCBr, Dest: NoReg, Args: []Operand{R(tc)}, Targets: []*Block{loop, exit}})

	exit.Append(&Instr{Op: OpRet, Dest: NoReg})
	f.ComputeCFG()
	return f
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	f := buildLoop(t)
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesEmptyBlock(t *testing.T) {
	f := buildLoop(t)
	f.NewBlock("dangling")
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("Verify = %v, want empty-block error", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	f := buildLoop(t)
	b := f.Blocks[0]
	// Swap terminator into the middle.
	b.Instrs[1], b.Instrs[3] = b.Instrs[3], b.Instrs[1]
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "mid-block") {
		t.Fatalf("Verify = %v, want mid-block terminator error", err)
	}
}

func TestVerifyCatchesUndefinedUse(t *testing.T) {
	f := buildLoop(t)
	bogus := f.NewReg()
	exit := f.Blocks[2]
	exit.Instrs = append([]*Instr{NewInstr(OpAdd, f.NewReg(), R(bogus), Imm(1))}, exit.Instrs...)
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("Verify = %v, want undefined-register error", err)
	}
}

func TestVerifyCatchesBadArgCount(t *testing.T) {
	f := buildLoop(t)
	f.Blocks[1].Instrs[0].Args = f.Blocks[1].Instrs[0].Args[:1]
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("Verify = %v, want arg-count error", err)
	}
}

func TestVerifyCatchesStoreToConst(t *testing.T) {
	f := buildLoop(t)
	m := f.AddMem(&MemRef{Name: "tbl", Space: L1, Elem: ElemI32, Size: 4, Const: true})
	st := &Instr{Op: OpStore, Dest: NoReg, Args: []Operand{Imm(0), Imm(1)}, Mem: m, Elem: ElemI32}
	b := f.Blocks[1]
	b.Instrs = append([]*Instr{st}, b.Instrs...)
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "constant memory") {
		t.Fatalf("Verify = %v, want constant-memory error", err)
	}
}

func TestComputeCFG(t *testing.T) {
	f := buildLoop(t)
	entry, loop, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2]
	if len(entry.Succs) != 2 || entry.Succs[0] != loop || entry.Succs[1] != exit {
		t.Errorf("entry.Succs wrong: %v", names(entry.Succs))
	}
	if len(loop.Preds) != 2 {
		t.Errorf("loop.Preds = %v, want [entry loop]", names(loop.Preds))
	}
	if len(exit.Preds) != 2 {
		t.Errorf("exit.Preds = %v, want [entry loop]", names(exit.Preds))
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f := buildLoop(t)
	dead := f.NewBlock("dead")
	dead.Append(&Instr{Op: OpRet})
	if n := f.RemoveUnreachable(); n != 1 {
		t.Fatalf("RemoveUnreachable = %d, want 1", n)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks after removal = %d, want 3", len(f.Blocks))
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildLoop(t)
	g := f.Clone()
	if err := g.Verify(); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	if f.String() != g.String() {
		t.Errorf("clone prints differently:\n%s\nvs\n%s", f, g)
	}
	// Mutating the clone must not affect the original.
	g.Blocks[1].Instrs[0].Op = OpSub
	if f.Blocks[1].Instrs[0].Op != OpAdd {
		t.Error("mutating clone changed original instruction")
	}
	if g.Blocks[1].Instrs[len(g.Blocks[1].Instrs)-1].Targets[0] == f.Blocks[1] {
		t.Error("clone branch targets point into original function")
	}
}

func TestPrintContainsStructure(t *testing.T) {
	f := buildLoop(t)
	s := f.String()
	for _, want := range []string{"kernel count(n=v0)", "entry0:", "loop1:", "cbr", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestInstrCloneIndependence(t *testing.T) {
	in := NewInstr(OpAdd, 5, R(1), Imm(3))
	cp := in.Clone()
	cp.Args[0] = Imm(9)
	if in.Args[0].Kind != OperReg {
		t.Error("mutating cloned args changed original")
	}
}

func TestUses(t *testing.T) {
	in := NewInstr(OpSelect, 9, R(1), Imm(3), R(2))
	us := in.Uses(nil)
	if len(us) != 2 || us[0] != 1 || us[1] != 2 {
		t.Errorf("Uses = %v, want [1 2]", us)
	}
}

func names(bs []*Block) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b.Name)
	}
	return out
}

func TestInterpVisitCounting(t *testing.T) {
	f := buildLoop(t)
	env := NewEnv(5)
	env.Visits = map[string]int64{}
	if _, err := Interp(f, env); err != nil {
		t.Fatal(err)
	}
	if env.Visits["entry0"] != 1 {
		t.Errorf("entry visits = %d, want 1", env.Visits["entry0"])
	}
	if env.Visits["loop1"] != 5 {
		t.Errorf("loop visits = %d, want 5", env.Visits["loop1"])
	}
	if env.Visits["exit2"] != 1 {
		t.Errorf("exit visits = %d, want 1", env.Visits["exit2"])
	}
}

func TestInterpStepLimit(t *testing.T) {
	f := buildLoop(t)
	env := NewEnv(1000000)
	env.MaxSteps = 100
	if _, err := Interp(f, env); err == nil {
		t.Error("step limit not enforced")
	}
}

func TestInterpArgCountMismatch(t *testing.T) {
	f := buildLoop(t)
	if _, err := Interp(f, NewEnv(1, 2)); err == nil {
		t.Error("arg count mismatch accepted")
	}
}

func TestOperandHelpers(t *testing.T) {
	r := R(5)
	im := Imm(-3)
	if !r.IsReg() || r.IsImm() || im.IsReg() || !im.IsImm() {
		t.Error("operand kind predicates wrong")
	}
	if r.String() != "v5" || im.String() != "-3" {
		t.Errorf("operand strings: %q %q", r, im)
	}
	if NoReg.String() != "_" {
		t.Errorf("NoReg renders %q", NoReg)
	}
}

func TestMemRefString(t *testing.T) {
	m := &MemRef{Name: "buf", Space: L1, Elem: ElemI16, Size: 42}
	if got := m.String(); got != "i16 buf[42]@L1" {
		t.Errorf("MemRef.String = %q", got)
	}
	if L2.String() != "L2" {
		t.Errorf("L2 renders %q", L2)
	}
}

func TestInstrStringForms(t *testing.T) {
	m := &MemRef{Name: "a", Space: L2, Elem: ElemU8, Size: 8}
	cases := []struct {
		in   *Instr
		want string
	}{
		{NewInstr(OpAdd, 3, R(1), Imm(2)), "v3 = add v1, 2"},
		{&Instr{Op: OpLoad, Dest: 4, Args: []Operand{R(1)}, Mem: m, Off: -2, Elem: ElemU8},
			"v4 = load.u8 a[v1-2]"},
		{&Instr{Op: OpStore, Dest: NoReg, Args: []Operand{Imm(0), R(2)}, Mem: m, Off: 3, Elem: ElemU8},
			"store.u8 a[0+3] = v2"},
		{&Instr{Op: OpRet, Dest: NoReg}, "ret"},
		{&Instr{Op: OpNop, Dest: NoReg}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Instr.String = %q, want %q", got, c.want)
		}
	}
}

func TestLoopInfoSingleBlock(t *testing.T) {
	f := buildLoop(t)
	l := &LoopInfo{Header: f.Blocks[1], Latch: f.Blocks[1]}
	if !l.SingleBlock() {
		t.Error("same header/latch should be single-block")
	}
	l.Latch = f.Blocks[2]
	if l.SingleBlock() {
		t.Error("distinct latch should not be single-block")
	}
}
