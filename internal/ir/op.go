package ir

import "fmt"

// Op is an IR operation code. The repertoire follows the paper's
// RISC/VLIW philosophy: simple integer operations only, with integer
// multiply the single "expensive" ALU capability (only IMUL-capable
// ALUs may execute it). There is no divide unit; the frontend strength-
// reduces division by power-of-two constants.
type Op uint8

const (
	OpNop Op = iota

	// Integer ALU operations, latency 1.
	OpAdd
	OpSub
	OpShl  // shift left logical
	OpShrA // shift right arithmetic
	OpShrU // shift right logical
	OpAnd
	OpOr
	OpXor
	OpCmpEQ
	OpCmpNE
	OpCmpLT  // signed <
	OpCmpLE  // signed <=
	OpCmpGT  // signed >
	OpCmpGE  // signed >=
	OpSelect // dest = arg0 != 0 ? arg1 : arg2
	// OpMin/OpMax are single-cycle signed min/max, available only when
	// the target's ALU repertoire includes them (machine.Arch.MinMax,
	// the opcode-choice extension of paper §2.2's "ALU Repertoire").
	// The backend fuses cmp+select pairs into them; they never appear
	// in architecture-independent IR.
	OpMin
	OpMax
	OpMov // dest = arg0
	// OpXMov copies a value between clusters over the global
	// connections: it reads arg0 in the source cluster's register file
	// and writes the destination register in another cluster, occupying
	// an ALU issue slot on the source cluster plus a global bus channel.
	// Inserted by the cluster partitioner; never appears before it.
	OpXMov

	// Integer multiply: latency 2, pipelined, requires an IMUL-capable ALU.
	OpMul

	// Memory operations. The MemRef determines the address space, the
	// index operand is in element units, Off is a constant element
	// offset folded into the addressing mode.
	OpLoad  // dest = Mem[arg0 + Off]
	OpStore // Mem[arg0 + Off] = arg1

	// Control transfer, executed by the single branch unit on cluster 0.
	OpBr  // unconditional: Targets[0]
	OpCBr // conditional on arg0 != 0: Targets[0] if true, Targets[1] if false
	OpRet

	// OpFused is an application-defined custom operation: a small DAG of
	// simple ALU steps chained into one issue slot on the dedicated
	// custom unit (machine.Arch.Ops). The instruction's Fused field
	// carries its FusedSpec; Args are the spec's external inputs. Never
	// emitted by the frontend — the backend's pattern rewriter
	// (internal/ops) introduces it per-architecture, like OpMin/OpMax.
	OpFused
)

var opNames = [...]string{
	OpNop:    "nop",
	OpAdd:    "add",
	OpSub:    "sub",
	OpShl:    "shl",
	OpShrA:   "shra",
	OpShrU:   "shru",
	OpAnd:    "and",
	OpOr:     "or",
	OpXor:    "xor",
	OpCmpEQ:  "cmpeq",
	OpCmpNE:  "cmpne",
	OpCmpLT:  "cmplt",
	OpCmpLE:  "cmple",
	OpCmpGT:  "cmpgt",
	OpCmpGE:  "cmpge",
	OpSelect: "select",
	OpMin:    "min",
	OpMax:    "max",
	OpMov:    "mov",
	OpXMov:   "xmov",
	OpMul:    "mul",
	OpLoad:   "load",
	OpStore:  "store",
	OpBr:     "br",
	OpCBr:    "cbr",
	OpRet:    "ret",
	OpFused:  "fused",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// IsALU reports whether op executes on an integer ALU (including the
// multiply, which additionally requires IMUL capability).
func (op Op) IsALU() bool {
	switch op {
	case OpAdd, OpSub, OpShl, OpShrA, OpShrU, OpAnd, OpOr, OpXor,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE,
		OpSelect, OpMin, OpMax, OpMov, OpMul:
		return true
	}
	return false
}

// IsCmp reports whether op is a comparison producing 0/1.
func (op Op) IsCmp() bool {
	switch op {
	case OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE:
		return true
	}
	return false
}

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return op == OpLoad || op == OpStore }

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool { return op == OpBr || op == OpCBr || op == OpRet }

// HasDest reports whether op defines a destination register.
func (op Op) HasDest() bool {
	switch op {
	case OpStore, OpBr, OpCBr, OpRet, OpNop:
		return false
	}
	return true
}

// IsCommutative reports whether arg0 and arg1 may be exchanged.
func (op Op) IsCommutative() bool {
	switch op {
	case OpAdd, OpAnd, OpOr, OpXor, OpCmpEQ, OpCmpNE, OpMin, OpMax, OpMul:
		return true
	}
	return false
}

// NArgs returns the number of operands op expects. OpFused is
// variable-arity (the instruction's FusedSpec.NIn decides); callers
// handling fused instructions must consult the spec, not this.
func (op Op) NArgs() int {
	switch op {
	case OpNop, OpBr, OpRet:
		return 0
	case OpFused:
		return -1
	case OpMov, OpXMov, OpLoad, OpCBr:
		return 1
	case OpSelect:
		return 3
	case OpStore:
		return 2
	default:
		return 2
	}
}

// Eval computes the result of a pure (non-memory, non-control) operation
// on concrete 32-bit values. It is shared by the constant folder and the
// simulator so the two can never disagree.
func (op Op) Eval(args ...int32) int32 {
	switch op {
	case OpAdd:
		return args[0] + args[1]
	case OpSub:
		return args[0] - args[1]
	case OpMul:
		return args[0] * args[1]
	case OpShl:
		return args[0] << (uint32(args[1]) & 31)
	case OpShrA:
		return args[0] >> (uint32(args[1]) & 31)
	case OpShrU:
		return int32(uint32(args[0]) >> (uint32(args[1]) & 31))
	case OpAnd:
		return args[0] & args[1]
	case OpOr:
		return args[0] | args[1]
	case OpXor:
		return args[0] ^ args[1]
	case OpCmpEQ:
		return b2i(args[0] == args[1])
	case OpCmpNE:
		return b2i(args[0] != args[1])
	case OpCmpLT:
		return b2i(args[0] < args[1])
	case OpCmpLE:
		return b2i(args[0] <= args[1])
	case OpCmpGT:
		return b2i(args[0] > args[1])
	case OpCmpGE:
		return b2i(args[0] >= args[1])
	case OpSelect:
		if args[0] != 0 {
			return args[1]
		}
		return args[2]
	case OpMin:
		if args[0] < args[1] {
			return args[0]
		}
		return args[1]
	case OpMax:
		if args[0] > args[1] {
			return args[0]
		}
		return args[1]
	case OpMov, OpXMov:
		return args[0]
	}
	panic(fmt.Sprintf("ir: Eval of non-pure op %s", op))
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
