package ir

import "fmt"

// Reg is a virtual register identifier. Physical register numbers are
// assigned much later, by the per-cluster register allocator.
type Reg int32

// NoReg marks the absence of a destination register.
const NoReg Reg = -1

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(r))
}

// OperandKind distinguishes register operands from immediates.
type OperandKind uint8

const (
	// OperReg is a virtual-register operand.
	OperReg OperandKind = iota
	// OperImm is an immediate operand. Following the long-immediate
	// tradition of VLIW instruction words (the Multiflow TRACE carried
	// 32-bit immediates in its wide words), any 32-bit constant may be
	// an immediate.
	OperImm
)

// Operand is a register or immediate source operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int32
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: OperReg, Reg: r} }

// Imm makes an immediate operand.
func Imm(v int32) Operand { return Operand{Kind: OperImm, Imm: v} }

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return o.Kind == OperReg }

// IsImm reports whether the operand is an immediate.
func (o Operand) IsImm() bool { return o.Kind == OperImm }

func (o Operand) String() string {
	if o.Kind == OperImm {
		return fmt.Sprintf("%d", o.Imm)
	}
	return o.Reg.String()
}

// Instr is a single IR instruction.
type Instr struct {
	Op   Op
	Dest Reg       // NoReg when Op.HasDest() is false
	Args []Operand // source operands, see Op.NArgs

	// Memory access fields (OpLoad/OpStore only).
	Mem  *MemRef  // the array accessed
	Off  int32    // constant element offset folded into the address
	Elem ElemType // access width; normally Mem.Elem

	// Control-flow targets (OpBr: 1, OpCBr: 2 = taken/fallthrough).
	Targets []*Block

	// Fused is the custom-op spec (OpFused only). Specs are immutable
	// and interned per op set, so Clone shares the pointer.
	Fused *FusedSpec

	// Cluster is the executing cluster assigned by the backend's
	// partitioner (destination cluster for OpXMov). Zero before
	// partitioning.
	Cluster int16
}

// NewInstr builds a non-memory, non-control instruction.
func NewInstr(op Op, dest Reg, args ...Operand) *Instr {
	return &Instr{Op: op, Dest: dest, Args: args}
}

// Uses appends the registers read by the instruction to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	for _, a := range in.Args {
		if a.Kind == OperReg {
			dst = append(dst, a.Reg)
		}
	}
	return dst
}

// Clone returns a deep copy of the instruction (Targets are shared,
// since blocks are identity objects).
func (in *Instr) Clone() *Instr {
	cp := *in
	cp.Args = append([]Operand(nil), in.Args...)
	cp.Targets = append([]*Block(nil), in.Targets...)
	return &cp
}

func (in *Instr) String() string {
	switch in.Op {
	case OpLoad:
		return fmt.Sprintf("%s = load.%s %s[%s%+d]", in.Dest, in.Elem, in.Mem.Name, in.Args[0], in.Off)
	case OpStore:
		return fmt.Sprintf("store.%s %s[%s%+d] = %s", in.Elem, in.Mem.Name, in.Args[0], in.Off, in.Args[1])
	case OpBr:
		return fmt.Sprintf("br %s", in.Targets[0].Name)
	case OpCBr:
		return fmt.Sprintf("cbr %s, %s, %s", in.Args[0], in.Targets[0].Name, in.Targets[1].Name)
	case OpRet:
		return "ret"
	case OpNop:
		return "nop"
	case OpFused:
		s := fmt.Sprintf("%s = %s.fused", in.Dest, in.Fused.Name)
		for i, a := range in.Args {
			if i > 0 {
				s += ","
			}
			s += " " + a.String()
		}
		return s
	}
	s := fmt.Sprintf("%s = %s", in.Dest, in.Op)
	for i, a := range in.Args {
		if i > 0 {
			s += ","
		}
		s += " " + a.String()
	}
	return s
}
